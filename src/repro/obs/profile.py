"""``repro profile TRACE.jsonl`` -- offline analysis of a written trace.

Answers the questions ROADMAP's "fast as the hardware allows" goal
needs answered before anything can be optimised:

* **per-phase timings** -- where did the wall clock go (shard, explore,
  check, merge, cache I/O)?
* **span aggregates** -- how many of each span, with total/mean/max
  durations;
* **top restrictions by evaluation cost** -- the ``checker.evals`` /
  ``checker.seconds`` metrics grouped per restriction, most expensive
  first;
* **worker utilisation** -- per-worker busy time over the explore+check
  window, which shows shard imbalance directly.

The same analyses run on a serve daemon's ``/jobs/<id>/events``
stream saved to a file: the stream is a schema-v1 trace whose extra
``serve.progress`` counter records (live ``phase:*`` / ``task:done``
events, payload stringified into labels) fold into the phase breakdown
when no spans or phase metrics made it into the stream, and are
summarised in their own section.

Everything here is a pure function of the parsed
:class:`repro.obs.trace.TraceData`; the CLI wrapper just reads, renders
and prints.  Reading validates every record against the schema, so
``repro profile`` doubles as the trace validator CI uses -- pass
``strict=False`` to salvage the valid prefix of a truncated or corrupt
stream instead (the report then opens with a truncation warning).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .metrics import HistogramStat, MetricsRegistry
from .trace import Span, TraceData, iter_spans, read_trace


def load_trace(path: str, strict: bool = True) -> TraceData:
    """Read + validate a trace file (thin alias of :func:`read_trace`)."""
    return read_trace(path, strict=strict)


def phase_breakdown(data: TraceData) -> List[Tuple[str, float]]:
    """(phase name, accumulated seconds), longest first.

    Prefers ``phase:*`` spans; falls back to the ``engine.phase_seconds``
    metric so traces written without span detail still profile, then to
    ``serve.progress`` ``phase:end`` events (which carry the elapsed
    seconds as a label) so a live event stream profiles too.
    """
    acc: Dict[str, float] = {}
    for span in iter_spans(data.spans):
        if span.name.startswith("phase:"):
            name = span.name[len("phase:"):]
            acc[name] = acc.get(name, 0.0) + span.duration
    if not acc:
        registry = MetricsRegistry()
        registry.merge_records(data.metric_records)
        acc = registry.by_label("engine.phase_seconds", "phase")
    if not acc:
        for rec in data.metric_records:
            labels = rec.get("labels", {})
            if (rec.get("name") == "serve.progress"
                    and labels.get("event") == "phase:end"):
                try:
                    seconds = float(labels.get("seconds", ""))
                except ValueError:
                    continue
                name = labels.get("phase", "?")
                acc[name] = acc.get(name, 0.0) + seconds
    return sorted(acc.items(), key=lambda kv: (-kv[1], kv[0]))


def serve_progress_events(data: TraceData) -> List[Tuple[str, int]]:
    """(event, occurrences) from ``serve.progress`` records, sorted.

    Empty for ``--trace`` files -- only daemon event streams carry
    these -- so the profile report shows the section exactly when it
    profiles a serve stream.
    """
    acc: Dict[str, int] = {}
    for rec in data.metric_records:
        if rec.get("name") != "serve.progress":
            continue
        event = rec.get("labels", {}).get("event", "?")
        acc[event] = acc.get(event, 0) + int(rec.get("value", 1))
    return sorted(acc.items())


def span_aggregates(data: TraceData) -> List[Tuple[str, HistogramStat]]:
    """(span name, duration histogram), by total duration, longest first."""
    acc: Dict[str, HistogramStat] = {}
    for span in iter_spans(data.spans):
        stat = acc.setdefault(span.name, HistogramStat())
        stat.observe(span.duration)
    return sorted(acc.items(), key=lambda kv: (-kv[1].total, kv[0]))


def restriction_costs(data: TraceData) -> List[Tuple[str, float, float]]:
    """(restriction, formula evaluations, seconds), costliest first."""
    registry = MetricsRegistry()
    registry.merge_records(data.metric_records)
    evals = registry.by_label("checker.evals", "restriction")
    seconds = registry.histograms_by_label("checker.seconds", "restriction")
    names = sorted(set(evals) | set(seconds))
    rows = [(name, evals.get(name, 0.0),
             seconds[name].total if name in seconds else 0.0)
            for name in names]
    return sorted(rows, key=lambda r: (-r[2], -r[1], r[0]))


def worker_utilisation(data: TraceData) -> List[Tuple[str, int, float, float]]:
    """(worker, tasks, busy seconds, utilisation) from ``task`` spans.

    Utilisation is busy time over the whole explore+check window, so
    idle tail-latency (one slow shard pinning one worker) shows up as
    every *other* worker's low percentage.
    """
    tasks: Dict[str, List[Span]] = {}
    window_start, window_end = float("inf"), float("-inf")
    for span in iter_spans(data.spans):
        if span.name != "task":
            continue
        worker = str(span.meta.get("worker", "?"))
        tasks.setdefault(worker, []).append(span)
        window_start = min(window_start, span.t_start)
        window_end = max(window_end, span.t_end)
    window = max(window_end - window_start, 0.0)
    rows = []
    for worker in sorted(tasks):
        busy = sum(s.duration for s in tasks[worker])
        util = busy / window if window > 0 else 0.0
        rows.append((worker, len(tasks[worker]), busy, util))
    return rows


def render_profile(data: TraceData, top: int = 10) -> str:
    """The full ``repro profile`` report, one string."""
    lines: List[str] = []
    schema = data.meta.get("schema")
    created = data.meta.get("created", "?")
    n_spans = sum(1 for _ in iter_spans(data.spans))
    lines.append(f"trace: schema v{schema}, created {created}, "
                 f"{n_spans} span(s), {len(data.metric_records)} metric(s), "
                 f"{len(data.explanations)} explanation(s)")
    if data.truncated:
        lines.append(f"WARNING: stream truncated after "
                     f"{data.records_read} valid record(s): {data.error}")

    phases = phase_breakdown(data)
    lines.append("")
    lines.append("phases:")
    if phases:
        total = sum(secs for _, secs in phases)
        for name, secs in phases:
            share = secs / total if total > 0 else 0.0
            lines.append(f"  {name:16s} {secs:9.4f}s  {share:6.1%}")
        lines.append(f"  {'total':16s} {total:9.4f}s")
    else:
        lines.append("  (no phase spans or metrics)")

    aggs = span_aggregates(data)
    if aggs:
        lines.append("")
        lines.append("spans (by total duration):")
        for name, stat in aggs[:top]:
            lines.append(
                f"  {name:16s} {stat.count:6d}x  total {stat.total:9.4f}s  "
                f"mean {stat.mean:9.6f}s  max {stat.max:9.6f}s")

    costs = restriction_costs(data)
    lines.append("")
    lines.append("restrictions (by evaluation cost):")
    if costs:
        for name, evals, secs in costs[:top]:
            lines.append(f"  {name:32s} {int(evals):10d} evals  "
                         f"{secs:9.4f}s")
    else:
        lines.append("  (no checker metrics in trace)")

    progress = serve_progress_events(data)
    if progress:
        lines.append("")
        lines.append("serve progress (live events):")
        for event, count in progress:
            lines.append(f"  {event:16s} {count:6d} event(s)")

    workers = worker_utilisation(data)
    lines.append("")
    # a stream with live serve events came from the daemon, where task
    # spans name the *resident* pool's workers
    lines.append("workers (resident pool):" if progress else "workers:")
    if workers:
        for worker, n_tasks, busy, util in workers:
            lines.append(f"  {worker:24s} {n_tasks:4d} task(s)  "
                         f"busy {busy:9.4f}s  utilisation {util:6.1%}")
    else:
        lines.append("  (no task spans in trace)")

    if data.explanations:
        lines.append("")
        lines.append("explanations:")
        for exp in data.explanations:
            lines.append(f"  {exp.get('restriction', '?')}")

    return "\n".join(lines)
