"""Expression language shared by the Monitor, CSP, and ADA interpreters.

Expressions evaluate over an :class:`ExprEnv` of named variables (monitor
variables, CSP/ADA process locals) and call/entry parameters.  Each
expression reports the variable names it reads, so interpreters can emit
Getval events for instrumented reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.errors import SpecificationError


class Expr:
    """An expression over variables and parameters."""

    def eval(self, env: "ExprEnv") -> Any:
        raise NotImplementedError

    def reads(self) -> Tuple[str, ...]:
        """Variable names this expression reads (for Getval events)."""
        return ()

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ExprEnv:
    """Evaluation context: variables, parameters, and (for monitors) the
    condition-queue probe."""

    variables: Mapping[str, Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    queue_nonempty: Callable[[str], bool] = lambda cond: False


@dataclass(frozen=True)
class Lit(Expr):
    value: Any

    def eval(self, env: ExprEnv) -> Any:
        return self.value

    def describe(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A variable read.  ``index`` addresses array variables:
    ``VarRef("buf", VarRef("outp"))`` reads ``buf[<outp>]``."""

    name: str
    index: Optional["Expr"] = None

    def resolved_name(self, env: "ExprEnv") -> str:
        if self.index is None:
            return self.name
        return f"{self.name}[{self.index.eval(env)}]"

    def eval(self, env: ExprEnv) -> Any:
        name = self.resolved_name(env)
        try:
            return env.variables[name]
        except KeyError:
            raise SpecificationError(f"unknown variable {name!r}")

    def reads(self) -> Tuple[str, ...]:
        base = (self.name,) if self.index is None else ()
        extra = self.index.reads() if self.index is not None else ()
        return base + extra

    def describe(self) -> str:
        if self.index is None:
            return self.name
        return f"{self.name}[{self.index.describe()}]"


@dataclass(frozen=True)
class ParamRef(Expr):
    """A call/entry parameter read."""

    name: str

    def eval(self, env: ExprEnv) -> Any:
        try:
            return env.params[self.name]
        except KeyError:
            raise SpecificationError(f"unknown parameter {self.name!r}")

    def describe(self) -> str:
        return f"${self.name}"


_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise SpecificationError(f"unknown operator {self.op!r}")

    def eval(self, env: ExprEnv) -> Any:
        return _BINOPS[self.op](self.left.eval(env), self.right.eval(env))

    def reads(self) -> Tuple[str, ...]:
        return self.left.reads() + self.right.reads()

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # "not" | "-"
    operand: Expr

    def eval(self, env: ExprEnv) -> Any:
        value = self.operand.eval(env)
        if self.op == "not":
            return not value
        if self.op == "-":
            return -value
        raise SpecificationError(f"unknown unary operator {self.op!r}")

    def reads(self) -> Tuple[str, ...]:
        return self.operand.reads()

    def describe(self) -> str:
        return f"{self.op}({self.operand.describe()})"


class Fn(Expr):
    """Named Python-function escape hatch: ``fn(env) -> value``.

    For value manipulation the small AST cannot express (list surgery in
    the CSP Readers/Writers server's pending queues, say).  Keep the name
    descriptive: it is what event dumps and errors show.
    """

    def __init__(self, name: str, fn: Callable[[ExprEnv], Any],
                 reads: Tuple[str, ...] = ()):
        self.name = name
        self.fn = fn
        self._reads = tuple(reads)

    def eval(self, env: ExprEnv) -> Any:
        return self.fn(env)

    def reads(self) -> Tuple[str, ...]:
        return self._reads

    def describe(self) -> str:
        return f"<{self.name}>"


def expr(value: Any) -> Expr:
    """Coerce: Expr passes through, str becomes VarRef, literal becomes Lit."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return VarRef(value)
    return Lit(value)
