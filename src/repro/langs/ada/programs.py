"""The paper's problems solved with ADA tasks (Section 11).

* :func:`one_slot_buffer_ada_system` -- a buffer task that alternates
  ``accept Deposit`` / ``accept Remove``;
* :func:`bounded_buffer_ada_system` -- the classic select-based bounded
  buffer (guards on ``count``);
* :func:`rw_ada_system` -- the classic readers-priority Readers/Writers
  server task::

      loop select
        when writing = 0                      => accept StartRead  do readers := readers+1 end
        or                                       accept EndRead    do readers := readers-1 end
        or when readers = 0 and writing = 0
               and StartRead'COUNT = 0        => accept StartWrite do writing := 1 end
        or                                       accept EndWrite   do writing := 0 end
        or terminate
      end select end loop

  Readers' priority is the ``StartRead'COUNT = 0`` conjunct: a write is
  never started while a read request is queued.  The ``writers_first``
  mutant removes it (and prefers writers instead) -- the negative
  control.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..exprs import BinOp, Lit, ParamRef, VarRef
from .ast import (
    Accept,
    AdaAssign,
    AdaLoop,
    AdaSystem,
    AdaTask,
    DataRead,
    DataWrite,
    EntryCall,
    EntryCount,
    Note,
    Reply,
    Select,
    SelectBranch,
)

# -- One-Slot Buffer ---------------------------------------------------------


def one_slot_buffer_ada_system(
    items: Sequence[Any] = (1, 2, 3),
    producer: str = "producer",
    consumer: str = "consumer",
    buffer: str = "buffer",
) -> AdaSystem:
    """Buffer task alternating Deposit and Remove accepts."""
    buf = AdaTask(
        name=buffer,
        entries=("Deposit", "Remove"),
        variables=(("slot", None),),
        body=(
            AdaLoop((
                Select((
                    SelectBranch(Accept("Deposit", (
                        AdaAssign("slot", ParamRef("arg"), label="store"),
                    ))),
                ), terminate=True),
                Select((
                    SelectBranch(Accept("Remove", (
                        Reply(VarRef("slot")),
                    ))),
                ), terminate=True),
            )),
        ),
    )
    producer_body: List = []
    for item in items:
        producer_body += [
            Note.make("Deposit", item=Lit(item)),
            EntryCall(buffer, "Deposit", Lit(item), label="dep"),
            Note.make("DepositDone", item=Lit(item)),
        ]
    consumer_body: List = []
    for _ in items:
        consumer_body += [
            Note.make("Remove"),
            EntryCall(buffer, "Remove", into="got", label="rem"),
            Note.make("RemoveDone", item=VarRef("got")),
        ]
    return AdaSystem((
        AdaTask(producer, (), (), tuple(producer_body)),
        AdaTask(consumer, (), (("got", None),), tuple(consumer_body)),
        buf,
    ))


# -- Bounded Buffer -----------------------------------------------------------


def bounded_buffer_ada_system(
    capacity: int = 2,
    items: Sequence[Any] = (1, 2, 3),
    n_consumers: int = 1,
    producer: str = "producer",
    buffer: str = "buffer",
) -> AdaSystem:
    """The classic guarded-select bounded buffer task."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    n = Lit(capacity)
    variables: List[Tuple[str, Any]] = [("count", 0), ("inp", 0), ("outp", 0)]
    variables += [(f"buf[{i}]", None) for i in range(capacity)]
    buf = AdaTask(
        name=buffer,
        entries=("Deposit", "Remove"),
        variables=tuple(variables),
        body=(
            AdaLoop((
                Select((
                    SelectBranch(
                        Accept("Deposit", (
                            AdaAssign("buf", ParamRef("arg"), label="store",
                                      index=VarRef("inp")),
                            AdaAssign("inp", BinOp("%", BinOp(
                                "+", VarRef("inp"), Lit(1)), n)),
                            AdaAssign("count", BinOp(
                                "+", VarRef("count"), Lit(1)), label="fill"),
                        )),
                        guard=BinOp("<", VarRef("count"), n),
                    ),
                    SelectBranch(
                        Accept("Remove", (
                            Reply(VarRef("buf", VarRef("outp"))),
                            AdaAssign("outp", BinOp("%", BinOp(
                                "+", VarRef("outp"), Lit(1)), n)),
                            AdaAssign("count", BinOp(
                                "-", VarRef("count"), Lit(1)), label="drain"),
                        )),
                        guard=BinOp(">", VarRef("count"), Lit(0)),
                    ),
                ), terminate=True),
            )),
        ),
    )
    producer_body: List = []
    for item in items:
        producer_body += [
            Note.make("Deposit", item=Lit(item)),
            EntryCall(buffer, "Deposit", Lit(item), label="dep"),
            Note.make("DepositDone", item=Lit(item)),
        ]
    per = len(items) // n_consumers
    extra = len(items) % n_consumers
    tasks = [AdaTask(producer, (), (), tuple(producer_body)), buf]
    for i in range(n_consumers):
        take = per + (1 if i < extra else 0)
        body: List = []
        for _ in range(take):
            body += [
                Note.make("Remove"),
                EntryCall(buffer, "Remove", into="got", label="rem"),
                Note.make("RemoveDone", item=VarRef("got")),
            ]
        tasks.append(AdaTask(f"consumer{i + 1}", (), (("got", None),),
                             tuple(body)))
    return AdaSystem(tuple(tasks))


# -- Readers/Writers ----------------------------------------------------------


def rw_ada_server(name: str = "server", writers_first: bool = False) -> AdaTask:
    """The readers-priority Readers/Writers server task (see module doc)."""
    readers0 = BinOp("==", VarRef("readers"), Lit(0))
    writing0 = BinOp("==", VarRef("writing"), Lit(0))
    no_queued_reads = BinOp("==", EntryCount("StartRead"), Lit(0))
    queued_writes = BinOp(">", EntryCount("StartWrite"), Lit(0))

    if writers_first:
        # MUTANT: writes need not wait for queued reads; reads defer to
        # queued writes instead
        write_guard = BinOp("and", readers0, writing0)
        read_guard = BinOp("and", writing0,
                           BinOp("==", EntryCount("StartWrite"), Lit(0)))
    else:
        write_guard = BinOp("and", BinOp("and", readers0, writing0),
                            no_queued_reads)
        read_guard = writing0

    return AdaTask(
        name=name,
        entries=("StartRead", "EndRead", "StartWrite", "EndWrite"),
        variables=(("readers", 0), ("writing", 0)),
        body=(
            AdaLoop((
                Select((
                    SelectBranch(
                        Accept("StartRead", (
                            AdaAssign("readers", BinOp(
                                "+", VarRef("readers"), Lit(1)), label="inc"),
                        )),
                        guard=read_guard,
                    ),
                    SelectBranch(Accept("EndRead", (
                        AdaAssign("readers", BinOp(
                            "-", VarRef("readers"), Lit(1)), label="dec"),
                    ))),
                    SelectBranch(
                        Accept("StartWrite", (
                            AdaAssign("writing", Lit(1), label="set"),
                        )),
                        guard=write_guard,
                    ),
                    SelectBranch(Accept("EndWrite", (
                        AdaAssign("writing", Lit(0), label="clear"),
                    ))),
                ), terminate=True),
            )),
        ),
    )


def ada_reader_body(server: str, loc: int) -> Tuple:
    return (
        Note.make("Read", loc=Lit(loc)),
        EntryCall(server, "StartRead", label="req-read"),
        DataRead(f"db.data[{loc}]", "info"),
        EntryCall(server, "EndRead", label="end-read"),
        Note.make("FinishRead", info=VarRef("info")),
    )


def ada_writer_body(server: str, loc: int, info: Any) -> Tuple:
    return (
        Note.make("Write", loc=Lit(loc), info=Lit(info)),
        EntryCall(server, "StartWrite", label="req-write"),
        DataWrite(f"db.data[{loc}]", Lit(info)),
        EntryCall(server, "EndWrite", label="end-write"),
        Note.make("FinishWrite"),
    )


def rw_ada_system(
    n_readers: int = 1,
    n_writers: int = 2,
    n_locs: int = 1,
    writers_first: bool = False,
    transactions_per_client: int = 1,
    server: str = "server",
) -> AdaSystem:
    """A complete ADA Readers/Writers system."""
    tasks: List[AdaTask] = []
    for i in range(n_readers):
        loc = 1 + (i % n_locs)
        body = ada_reader_body(server, loc) * transactions_per_client
        tasks.append(AdaTask(f"reader{i + 1}", (), (("info", None),), body))
    for j in range(n_writers):
        loc = 1 + (j % n_locs)
        body = ada_writer_body(server, loc, 100 + j) * transactions_per_client
        tasks.append(AdaTask(f"writer{j + 1}", (), (), body))
    tasks.append(rw_ada_server(server, writers_first))
    return AdaSystem(
        tuple(tasks),
        data_elements=tuple(
            (f"db.data[{loc}]", 0) for loc in range(1, n_locs + 1)
        ),
    )
