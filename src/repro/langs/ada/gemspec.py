"""GEM description of ADA tasking (Section 11).

ADA is the paper's third language primitive: "ADA's tasking mechanism,
which uses the rendezvous for interprocess communication."  The GEM
shape: each task is a group containing its own element, its variables,
and one element per entry; the entry elements' ``Call`` events are the
group's ports -- an entry is exactly a task's "access hole".

Per-entry events: ``Call(frm, value)`` (issued by the caller; queued),
``Start(frm)`` (rendezvous begins; enabled by the Call), ``End(frm,
reply)`` (accept body done); the caller's ``Resume`` event at its own
element is enabled by the End.

Restrictions:

* ``ada-call-starts-rendezvous`` -- every Start is enabled by exactly
  one Call, and each Call enables at most one Start (the prerequisite
  abbreviation, per entry);
* ``ada-rendezvous-brackets`` -- Start and End alternate at every entry
  element (one rendezvous at a time per entry);
* ``ada-fifo-entries`` -- calls to one entry are served in call order
  (ADA's FIFO entry-queue rule): the k-th Start's caller is the k-th
  Call's caller;
* ``ada-resume-follows-end`` -- every Resume is enabled by exactly one
  entry End.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...core import (
    ClassAt,
    ElementDecl,
    EventClass,
    EventClassRef,
    GroupDecl,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
    prerequisite,
)
from .ast import (
    Accept,
    AdaIf,
    AdaLoop,
    AdaStmt,
    AdaSystem,
    DataRead,
    DataWrite,
    Note,
    Select,
)


def _value(*names: str) -> Tuple[ParamSpec, ...]:
    return tuple(ParamSpec(n, "VALUE") for n in names)


def _walk(stmts) -> List[AdaStmt]:
    out: List[AdaStmt] = []
    for s in stmts:
        out.append(s)
        if isinstance(s, AdaIf):
            out += _walk(s.then_branch)
            out += _walk(s.else_branch)
        elif isinstance(s, AdaLoop):
            out += _walk(s.body)
        elif isinstance(s, Accept):
            out += _walk(s.body)
        elif isinstance(s, Select):
            for b in s.branches:
                out += _walk([b.accept])
    return out


def rendezvous_bracket_restriction(element: str) -> Restriction:
    """Start/End strictly alternate at one entry element."""

    def check(history, env) -> bool:
        open_rendezvous = False
        for ev in history.computation.events_at(element):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "Start":
                if open_rendezvous:
                    return False
                open_rendezvous = True
            elif ev.event_class == "End":
                if not open_rendezvous:
                    return False
                open_rendezvous = False
        return True

    return Restriction(
        f"ada-rendezvous-brackets-{element}",
        PyPred(f"start/end alternate @ {element}", check),
        comment="one rendezvous at a time per entry",
    )


def fifo_entry_restriction(element: str) -> Restriction:
    """ADA's FIFO rule: the k-th Start serves the k-th Call."""

    def check(history, env) -> bool:
        calls = []
        starts = []
        for ev in history.computation.events_at(element):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "Call":
                calls.append(ev.param("frm"))
            elif ev.event_class == "Start":
                starts.append(ev.param("frm"))
        return starts == calls[: len(starts)]

    return Restriction(
        f"ada-fifo-{element}",
        PyPred(f"FIFO service @ {element}", check),
        comment="entry queues are served in call order (ADA rule)",
    )


def ada_task_group(system: AdaSystem, task_name: str) -> GroupDecl:
    """One task's group; its entries' Call events are the ports."""
    decl = system.task(task_name)
    members = [task_name]
    members += [f"{task_name}.entry.{e}" for e in decl.entries]
    members += [f"{task_name}.var.{v}" for v, _init in decl.variables]
    data_names = {el for el, _init in system.data_elements}
    for stmt in _walk(decl.body):
        if isinstance(stmt, (DataRead, DataWrite)) and stmt.element in data_names:
            if stmt.element not in members:
                members.append(stmt.element)
    # Ports: entry Call events (how other tasks reach this task) and the
    # task's own Resume events (how a completed rendezvous re-enters the
    # caller's control flow from the callee's entry element).
    ports = [EventClassRef(f"{task_name}.entry.{e}", "Call")
             for e in decl.entries]
    ports.append(EventClassRef(task_name, "Resume"))
    return GroupDecl.make(f"{task_name}.task", members, ports=ports)


def ada_program_spec(system: AdaSystem, extra_restrictions=(),
                     thread_types=(), name: str = "") -> Specification:
    """The GEM program specification PROG for an ADA system."""
    elements: List[ElementDecl] = []
    restrictions: List[Restriction] = []
    for task in system.tasks:
        note_classes: Dict[str, EventClass] = {
            "Resume": EventClass("Resume", _value("task", "entry")),
        }
        for stmt in _walk(task.body):
            if isinstance(stmt, Note) and stmt.event_class not in note_classes:
                note_classes[stmt.event_class] = EventClass(
                    stmt.event_class, _value(*[k for k, _e in stmt.params]))
        elements.append(ElementDecl.make(task.name, note_classes.values()))
        for entry in task.entries:
            el = f"{task.name}.entry.{entry}"
            elements.append(ElementDecl.make(el, [
                EventClass("Call", _value("frm", "value")),
                EventClass("Start", _value("frm")),
                EventClass("End", _value("frm", "reply")),
            ]))
            restrictions.append(Restriction(
                f"ada-call-starts-rendezvous-{el}",
                prerequisite(ClassAt(EventClassRef(el, "Call")),
                             ClassAt(EventClassRef(el, "Start"))),
                comment="every Start enabled by exactly one Call",
            ))
            restrictions.append(rendezvous_bracket_restriction(el))
            restrictions.append(fifo_entry_restriction(el))
        for v, _init in task.variables:
            elements.append(ElementDecl.make(f"{task.name}.var.{v}", [
                EventClass("Assign", _value("newval", "site", "by")),
                EventClass("Getval", _value("oldval", "site", "by")),
            ]))
    for data_el, _init in system.data_elements:
        elements.append(ElementDecl.make(data_el, [
            EventClass("Assign", _value("newval", "by")),
            EventClass("Getval", _value("oldval", "by")),
        ]))

    def resume_check(history, env) -> bool:
        comp = history.computation
        for ev in comp.events:
            if ev.event_class != "Resume":
                continue
            if not history.occurred(ev.eid):
                continue
            enablers = [
                e for e in comp.enabled_by(ev.eid)
                if e.event_class == "End"
            ]
            if len(enablers) != 1:
                return False
        return True

    restrictions.append(Restriction(
        "ada-resume-follows-end",
        PyPred("Resume enabled by exactly one End", resume_check),
    ))
    restrictions.extend(extra_restrictions)

    groups = [ada_task_group(system, t.name) for t in system.tasks]
    return Specification(
        name or "ada-program",
        elements=elements,
        groups=groups,
        restrictions=restrictions,
        thread_types=list(thread_types),
    )


def ada_process_of_event(event) -> str:
    """Task identity for events, where unambiguous.

    Entry-element events are *shared* between caller and acceptor (Call
    is the caller's act, Start/End the acceptor's); rendezvous chains
    are inherently cross-task, so ADA correspondences keep all projected
    edges (return None to make every edge pass the filter).
    """
    return None
