"""ADA tasking: AST, rendezvous interpreter emitting GEM computations,
the GEM description of the tasking primitive, and the paper's ADA
programs."""

from .ast import (
    Accept,
    AdaAssign,
    AdaIf,
    AdaLoop,
    AdaStmt,
    AdaSystem,
    AdaTask,
    DataRead,
    DataWrite,
    EntryCall,
    EntryCount,
    Note,
    Reply,
    Select,
    SelectBranch,
)
from .gemspec import (
    ada_process_of_event,
    ada_program_spec,
    ada_task_group,
    fifo_entry_restriction,
    rendezvous_bracket_restriction,
)
from .interp import AdaProgram, AdaState
from .programs import (
    ada_reader_body,
    ada_writer_body,
    bounded_buffer_ada_system,
    one_slot_buffer_ada_system,
    rw_ada_server,
    rw_ada_system,
)

__all__ = [
    "AdaStmt", "AdaAssign", "AdaIf", "Note", "DataRead", "DataWrite",
    "EntryCall", "Reply", "Accept", "SelectBranch", "Select", "AdaLoop",
    "EntryCount", "AdaTask", "AdaSystem",
    "AdaProgram", "AdaState",
    "ada_program_spec", "ada_task_group", "ada_process_of_event",
    "rendezvous_bracket_restriction", "fifo_entry_restriction",
    "one_slot_buffer_ada_system", "bounded_buffer_ada_system",
    "rw_ada_server", "rw_ada_system", "ada_reader_body", "ada_writer_body",
]
