"""Abstract syntax for the ADA tasking subset.

The third language primitive the paper describes with GEM: "ADA's
tasking mechanism, which uses the rendezvous for interprocess
communication" (Section 11).  This subset has:

* tasks with local variables and *entries*;
* entry calls (``T.E(value)``) -- the caller blocks in the entry's FIFO
  queue until the rendezvous completes, optionally receiving a reply;
* ``accept E do ... end`` -- the acceptor waits for a caller and runs
  the accept body during the rendezvous (:class:`Reply` sets the value
  returned to the caller);
* ``select`` with guarded accept alternatives and an optional
  ``terminate`` alternative (ADA's distributed-termination mechanism);
* guards may consult an entry's queue length -- ADA's ``E'COUNT``
  attribute (:class:`EntryCount`), which is what the classic
  readers-priority ADA server is built from;
* infinite ``loop ... end loop`` (exited only by ``terminate``), local
  control (``AdaIf``), notes, and external data accesses, as in the
  other languages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ...core.errors import SpecificationError
from ..exprs import Expr, ExprEnv, Lit, VarRef, expr


class AdaStmt:
    """An ADA statement.  ``label`` names it in emitted events."""

    label: Optional[str]

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AdaAssign(AdaStmt):
    """``var := value`` on the task's own variables."""

    var: str
    value: Expr
    label: Optional[str] = None
    index: Optional[Expr] = None

    def describe(self) -> str:
        target = self.var if self.index is None else (
            f"{self.var}[{self.index.describe()}]")
        return f"{target} := {self.value.describe()}"


@dataclass(frozen=True)
class AdaIf(AdaStmt):
    """Local control flow; executes silently."""

    condition: Expr
    then_branch: Tuple[AdaStmt, ...]
    else_branch: Tuple[AdaStmt, ...] = ()
    label: Optional[str] = None

    def describe(self) -> str:
        return f"IF {self.condition.describe()}"


@dataclass(frozen=True)
class Note(AdaStmt):
    """Emit a problem-level event at the task's own element."""

    event_class: str
    params: Tuple[Tuple[str, Expr], ...] = ()
    label: Optional[str] = None

    @staticmethod
    def make(event_class: str, **params: Any) -> "Note":
        return Note(event_class,
                    tuple(sorted((k, expr(v)) for k, v in params.items())))

    def describe(self) -> str:
        return f"NOTE {self.event_class}"


@dataclass(frozen=True)
class DataRead(AdaStmt):
    """Read a shared data element (outside the language) into a local."""

    element: str
    var: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"{self.var} := READ {self.element}"


@dataclass(frozen=True)
class DataWrite(AdaStmt):
    """Write a shared data element (outside the language)."""

    element: str
    value: Expr
    label: Optional[str] = None

    def describe(self) -> str:
        return f"WRITE {self.element} := {self.value.describe()}"


@dataclass(frozen=True)
class EntryCall(AdaStmt):
    """``T.E(value)`` -- call entry E of task T, optionally binding the
    rendezvous reply into ``into``."""

    task: str
    entry: str
    value: Expr = Lit(None)
    into: Optional[str] = None
    label: Optional[str] = None

    def describe(self) -> str:
        suffix = f" -> {self.into}" if self.into else ""
        return f"CALL {self.task}.{self.entry}({self.value.describe()}){suffix}"


@dataclass(frozen=True)
class Reply(AdaStmt):
    """Inside an accept body: set the value returned to the caller."""

    value: Expr
    label: Optional[str] = None

    def describe(self) -> str:
        return f"REPLY {self.value.describe()}"


@dataclass(frozen=True)
class Accept(AdaStmt):
    """``accept E do body end`` -- the body runs during the rendezvous.

    The body may contain only local statements (assignments, ifs, notes,
    Reply); the caller's value is available as the parameter ``arg``.
    """

    entry: str
    body: Tuple[AdaStmt, ...] = ()
    label: Optional[str] = None

    def describe(self) -> str:
        return f"ACCEPT {self.entry}"


@dataclass(frozen=True)
class SelectBranch:
    """``when guard => accept E do ... end``."""

    accept: Accept
    guard: Expr = Lit(True)


@dataclass(frozen=True)
class Select(AdaStmt):
    """``select ... or ... or terminate end select``."""

    branches: Tuple[SelectBranch, ...]
    terminate: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.branches and not self.terminate:
            raise SpecificationError("select needs a branch or terminate")

    def describe(self) -> str:
        t = " or terminate" if self.terminate else ""
        return f"SELECT[{len(self.branches)}{t}]"


@dataclass(frozen=True)
class AdaLoop(AdaStmt):
    """``loop ... end loop`` -- exited only via a terminate alternative."""

    body: Tuple[AdaStmt, ...]
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.body:
            raise SpecificationError("loop body must be non-empty")

    def describe(self) -> str:
        return "LOOP"


@dataclass(frozen=True)
class EntryCount(Expr):
    """``E'COUNT`` -- number of callers queued on own entry E.

    Only meaningful inside the owning task's guards; the interpreter
    injects queue lengths as pseudo-variables ``<count:E>``.
    """

    entry: str

    def eval(self, env: ExprEnv) -> Any:
        try:
            return env.variables[f"<count:{self.entry}>"]
        except KeyError:
            raise SpecificationError(
                f"E'COUNT used outside the owning task: {self.entry!r}")

    def reads(self) -> Tuple[str, ...]:
        return ()

    def describe(self) -> str:
        return f"{self.entry}'COUNT"


@dataclass(frozen=True)
class AdaTask:
    """One task: name, declared entries, local variables, body."""

    name: str
    entries: Tuple[str, ...] = ()
    variables: Tuple[Tuple[str, Any], ...] = ()
    body: Tuple[AdaStmt, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.entries)) != len(self.entries):
            raise SpecificationError(
                f"task {self.name!r} declares duplicate entries")
        names = [v for v, _init in self.variables]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"task {self.name!r} declares duplicate variables")


@dataclass(frozen=True)
class AdaSystem:
    """A closed system of tasks plus external data elements."""

    tasks: Tuple[AdaTask, ...]
    data_elements: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(names) != len(set(names)):
            raise SpecificationError("duplicate task names")

    def task(self, name: str) -> AdaTask:
        for t in self.tasks:
            if t.name == name:
                return t
        raise SpecificationError(f"no task {name!r}")
