"""ADA tasking semantics, instrumented to emit GEM computations.

Rendezvous model: an entry call queues the caller (FIFO per entry,
ADA's rule) and emits a ``Call`` event at the entry element; when the
owning task accepts, the whole rendezvous executes as one atomic
scheduler action emitting::

    T.entry.E: Call(frm, value)      -- when the call is issued (earlier)
    T.entry.E: Start(frm)            -- acceptor's chain + enabled by Call
    ...accept-body events (acceptor's chain)...
    T.entry.E: End(frm, reply)       -- acceptor's chain
    caller:    Resume(task, entry)   -- caller's chain + enabled by End

The explicit Call event is what distinguishes ADA from our CSP model: a
pending, not-yet-accepted request is observable (and ``E'COUNT`` guards
can read the queue), which is exactly what the classic readers-priority
ADA server exploits.

Distributed termination: a ``terminate`` alternative is selectable when
every other task is done or itself blocked at a terminate-able select
with empty queues, and this task's entry queues are empty (a sound
approximation of ADA's rule for systems with one layer of servers, which
covers every program in this repository).

Reductions: notes and local assignments run eagerly (own elements only);
entry calls, accepts/selects, and data accesses branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...core.errors import SpecificationError
from ...sim.runtime import Action, SimpleState
from ..exprs import ExprEnv
from .ast import (
    Accept,
    AdaAssign,
    AdaIf,
    AdaLoop,
    AdaStmt,
    AdaSystem,
    AdaTask,
    DataRead,
    DataWrite,
    EntryCall,
    Note,
    Reply,
    Select,
    SelectBranch,
)


class _Task:
    """Mutable per-task state."""

    def __init__(self, decl: AdaTask):
        self.decl = decl
        self.locals: Dict[str, Any] = {name: init for name, init in decl.variables}
        # frames: [stmts, idx, is_loop]
        self.stack: List[List] = [[list(decl.body), 0, False]]
        self.done = not decl.body
        self.waiting_call: Optional[Tuple[str, str]] = None  # (task, entry)


class AdaState(SimpleState):
    """One evolving execution of an :class:`AdaSystem`."""

    def __init__(self, system: AdaSystem):
        super().__init__()
        self.system = system
        self.tasks: Dict[str, _Task] = {t.name: _Task(t) for t in system.tasks}
        self.data: Dict[str, Any] = {el: init for el, init in system.data_elements}
        # entry queues: (task, entry) -> list of (caller, value, Call event)
        self.queues: Dict[Tuple[str, str], List] = {}
        for t in system.tasks:
            for e in t.entries:
                self.queues[(t.name, e)] = []

    # -- elements -----------------------------------------------------------

    def entry_element(self, task: str, entry: str) -> str:
        return f"{task}.entry.{entry}"

    def var_element(self, task: str, var: str) -> str:
        return f"{task}.var.{var}"

    # -- control-state helpers ------------------------------------------------

    def _env(self, t: _Task, params: Optional[Dict[str, Any]] = None) -> ExprEnv:
        variables = dict(t.locals)
        for (task, entry), queue in self.queues.items():
            if task == t.decl.name:
                variables[f"<count:{entry}>"] = len(queue)
        return ExprEnv(variables=variables, params=params or {})

    def _normalize(self, t: _Task) -> None:
        while t.stack:
            frame = t.stack[-1]
            body, idx, is_loop = frame
            if idx >= len(body):
                if is_loop:
                    frame[1] = 0
                    continue
                t.stack.pop()
                continue
            stmt = body[idx]
            if isinstance(stmt, AdaIf):
                frame[1] = idx + 1
                branch = (stmt.then_branch
                          if stmt.condition.eval(self._env(t))
                          else stmt.else_branch)
                if branch:
                    t.stack.append([list(branch), 0, False])
                continue
            if isinstance(stmt, AdaLoop):
                frame[1] = idx + 1
                t.stack.append([list(stmt.body), 0, True])
                continue
            break
        if not t.stack:
            t.done = True

    def _current(self, t: _Task) -> Optional[AdaStmt]:
        if t.done or t.waiting_call is not None:
            return None
        self._normalize(t)
        if t.done or not t.stack:
            return None
        body, idx, _loop = t.stack[-1]
        return body[idx]

    def _advance(self, t: _Task) -> None:
        t.stack[-1][1] += 1
        self._normalize(t)

    # -- scheduler interface ------------------------------------------------------

    def enabled(self) -> List[Action]:
        # eager local steps
        for name, t in self.tasks.items():
            stmt = self._current(t)
            if isinstance(stmt, (AdaAssign, Note)):
                return [Action(name, stmt.describe(), ("local", name))]

        actions: List[Action] = []
        for name, t in self.tasks.items():
            stmt = self._current(t)
            if stmt is None:
                continue
            if isinstance(stmt, (DataRead, DataWrite)):
                actions.append(Action(name, stmt.describe(), ("data", name)))
            elif isinstance(stmt, EntryCall):
                actions.append(Action(name, stmt.describe(), ("call", name)))
            elif isinstance(stmt, Accept):
                if self.queues.get((name, stmt.entry)):
                    actions.append(
                        Action(name, stmt.describe(), ("accept", name, None)))
            elif isinstance(stmt, Select):
                env = self._env(t)
                for i, branch in enumerate(stmt.branches):
                    if not branch.guard.eval(env):
                        continue
                    if self.queues.get((name, branch.accept.entry)):
                        actions.append(Action(
                            name, f"select:{branch.accept.entry}",
                            ("accept", name, i)))
                if stmt.terminate and self._may_terminate(name):
                    actions.append(
                        Action(name, "terminate", ("terminate", name)))
            elif isinstance(stmt, Reply):
                raise SpecificationError(
                    "Reply is only meaningful inside an accept body")
        return actions

    def _may_terminate(self, name: str) -> bool:
        """Terminate alternative selectable (approximation; see module doc)."""
        for (task, _entry), queue in self.queues.items():
            if task == name and queue:
                return False
        for other_name, other in self.tasks.items():
            if other_name == name:
                continue
            if other.done:
                continue
            stmt = self._current(other)
            if isinstance(stmt, Select) and stmt.terminate:
                # a sibling server also waiting to terminate is fine iff
                # its own queues are empty
                if all(not q for (t2, _e), q in self.queues.items()
                       if t2 == other_name):
                    continue
            return False
        return True

    def is_final(self) -> bool:
        return all(t.done for t in self.tasks.values())

    def step(self, action: Action) -> None:
        kind = action.key[0]
        if kind == "local":
            self._step_local(action.key[1])
        elif kind == "data":
            self._step_data(action.key[1])
        elif kind == "call":
            self._step_call(action.key[1])
        elif kind == "accept":
            _, name, branch = action.key
            self._rendezvous(name, branch)
        elif kind == "terminate":
            t = self.tasks[action.key[1]]
            t.stack.clear()
            t.done = True
        else:
            raise SpecificationError(f"unknown action {action}")

    # -- execution -------------------------------------------------------------------

    def _site(self, stmt: AdaStmt) -> str:
        return stmt.label or stmt.describe()

    def _step_local(self, name: str) -> None:
        t = self.tasks[name]
        stmt = self._current(t)
        if isinstance(stmt, AdaAssign):
            self._do_assign(t, stmt, params={})
        elif isinstance(stmt, Note):
            env = self._env(t)
            params = {k: e.eval(env) for k, e in stmt.params}
            self.emit(name, name, stmt.event_class, params)
        else:
            raise SpecificationError(f"not a local statement: {stmt}")
        self._advance(t)

    def _do_assign(self, t: _Task, stmt: AdaAssign,
                   params: Dict[str, Any]) -> None:
        name = t.decl.name
        env = self._env(t, params)
        value = stmt.value.eval(env)
        target = stmt.var
        if stmt.index is not None:
            target = f"{stmt.var}[{stmt.index.eval(env)}]"
        if target not in t.locals:
            raise SpecificationError(f"task {name!r} has no variable {target!r}")
        self.emit(name, self.var_element(name, target), "Assign",
                  {"newval": value, "site": self._site(stmt), "by": name})
        t.locals[target] = value

    def _step_data(self, name: str) -> None:
        t = self.tasks[name]
        stmt = self._current(t)
        if isinstance(stmt, DataRead):
            if stmt.element not in self.data:
                raise SpecificationError(f"unknown data element {stmt.element!r}")
            if stmt.var not in t.locals:
                raise SpecificationError(
                    f"task {name!r} has no variable {stmt.var!r}")
            value = self.data[stmt.element]
            self.emit(name, stmt.element, "Getval",
                      {"oldval": value, "by": name})
            t.locals[stmt.var] = value
        elif isinstance(stmt, DataWrite):
            if stmt.element not in self.data:
                raise SpecificationError(f"unknown data element {stmt.element!r}")
            value = stmt.value.eval(self._env(t))
            self.emit(name, stmt.element, "Assign",
                      {"newval": value, "by": name})
            self.data[stmt.element] = value
        else:
            raise SpecificationError(f"not a data statement: {stmt}")
        self._advance(t)

    def _step_call(self, name: str) -> None:
        t = self.tasks[name]
        stmt = self._current(t)
        assert isinstance(stmt, EntryCall)
        key = (stmt.task, stmt.entry)
        if key not in self.queues:
            raise SpecificationError(
                f"call to unknown entry {stmt.task}.{stmt.entry}")
        value = stmt.value.eval(self._env(t))
        call_ev = self.emit(name, self.entry_element(*key), "Call",
                            {"frm": name, "value": value})
        self.queues[key].append((name, value, call_ev))
        t.waiting_call = key

    def _rendezvous(self, name: str, branch_idx: Optional[int]) -> None:
        t = self.tasks[name]
        stmt = self._current(t)
        if isinstance(stmt, Accept):
            accept = stmt
        else:
            assert isinstance(stmt, Select)
            accept = stmt.branches[branch_idx].accept
        key = (name, accept.entry)
        caller_name, value, call_ev = self.queues[key].pop(0)
        caller = self.tasks[caller_name]

        self.emit(name, self.entry_element(*key), "Start",
                  {"frm": caller_name}, extra_enables=[call_ev])
        # run the accept body atomically; the caller's value is `arg`
        reply: List[Any] = [None]
        self._run_accept_body(t, accept, {"arg": value}, reply)
        end_ev = self.emit(name, self.entry_element(*key), "End",
                           {"frm": caller_name, "reply": reply[0]})
        # caller resumes: its next event is enabled by the rendezvous end
        self.emit(caller_name, caller_name, "Resume",
                  {"task": name, "entry": accept.entry},
                  extra_enables=[end_ev])
        call_stmt = self._waiting_call_stmt(caller)
        if call_stmt.into is not None:
            if call_stmt.into not in caller.locals:
                raise SpecificationError(
                    f"task {caller_name!r} has no variable {call_stmt.into!r}")
            caller.locals[call_stmt.into] = reply[0]
        caller.waiting_call = None
        self._advance(caller)
        self._advance(t)

    def _waiting_call_stmt(self, caller: _Task) -> EntryCall:
        body, idx, _loop = caller.stack[-1]
        stmt = body[idx]
        assert isinstance(stmt, EntryCall)
        return stmt

    def _run_accept_body(self, t: _Task, accept: Accept,
                         params: Dict[str, Any], reply: List[Any]) -> None:
        """Execute the accept body (local statements only), atomically."""
        stack: List[List] = [[list(accept.body), 0]]
        while stack:
            frame = stack[-1]
            body, idx = frame
            if idx >= len(body):
                stack.pop()
                continue
            frame[1] = idx + 1
            stmt = body[idx]
            if isinstance(stmt, AdaAssign):
                self._do_assign(t, stmt, params)
            elif isinstance(stmt, Note):
                env = self._env(t, params)
                note_params = {k: e.eval(env) for k, e in stmt.params}
                self.emit(t.decl.name, t.decl.name, stmt.event_class,
                          note_params)
            elif isinstance(stmt, AdaIf):
                branch = (stmt.then_branch
                          if stmt.condition.eval(self._env(t, params))
                          else stmt.else_branch)
                if branch:
                    stack.append([list(branch), 0])
            elif isinstance(stmt, Reply):
                reply[0] = stmt.value.eval(self._env(t, params))
            else:
                raise SpecificationError(
                    f"accept bodies may contain only local statements, "
                    f"got {stmt.describe()}")


@dataclass(frozen=True)
class AdaProgram:
    """A :class:`~repro.sim.runtime.Program` for an ADA system."""

    system: AdaSystem

    def initial_state(self) -> AdaState:
        return AdaState(self.system)
