"""Abstract syntax for the Monitor language (Hoare monitors).

The paper's Section 9 verifies a Monitor program -- the ReadersWriters
monitor -- against the Readers/Writers problem specification.  This
module defines the language that program is written in:

* a monitor has variables, condition queues, entry procedures, and
  initialization code;
* entry bodies are statements: assignment, if, while, WAIT(cond),
  SIGNAL(cond), skip;
* expressions read monitor variables and entry parameters, and may test
  ``queue(cond)`` (is any process waiting on the condition?) -- the
  ReadersWriters EndWrite entry uses it;
* around the monitor live *caller scripts*: straight-line sequences of
  entry calls and accesses to data elements outside the monitor ("the
  data itself must be located outside of the monitor").

Statements carry an optional ``label``.  Labels name the statement
events in the emitted GEM computation (``EntryStartRead:readernum :=
readernum + 1`` in the paper's correspondence table) and are how the
verification correspondence picks significant events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ...core.errors import SpecificationError

# ---------------------------------------------------------------------------
# Expressions (shared with CSP/ADA; see repro.langs.exprs)
# ---------------------------------------------------------------------------

from ..exprs import (  # noqa: E402  (re-exported for backward compatibility)
    BinOp,
    Expr,
    ExprEnv,
    Fn,
    Lit,
    ParamRef,
    UnOp,
    VarRef,
)


@dataclass(frozen=True)
class QueueNonEmpty(Expr):
    """``queue(cond)`` -- true iff a process is waiting on the condition."""

    condition: str

    def eval(self, env: ExprEnv) -> Any:
        return env.queue_nonempty(self.condition)

    def describe(self) -> str:
        return f"queue({self.condition})"


def expr(value: Union[Expr, int, bool, str]) -> Expr:
    """Coerce: Expr passes through, str becomes VarRef, literal becomes Lit."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return VarRef(value)
    return Lit(value)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """A monitor statement.  ``label`` names it in emitted events."""

    label: Optional[str]

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Assign(Stmt):
    """``var := value`` (or ``var[index] := value`` for array cells)."""

    var: str
    value: Expr
    label: Optional[str] = None
    index: Optional[Expr] = None

    def describe(self) -> str:
        target = self.var if self.index is None else (
            f"{self.var}[{self.index.describe()}]")
        return f"{target} := {self.value.describe()}"


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_branch: Tuple[Stmt, ...]
    else_branch: Tuple[Stmt, ...] = ()
    label: Optional[str] = None

    def describe(self) -> str:
        return f"IF {self.condition.describe()} THEN ... ELSE ..."


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: Tuple[Stmt, ...]
    label: Optional[str] = None

    def describe(self) -> str:
        return f"WHILE {self.condition.describe()} DO ..."


@dataclass(frozen=True)
class Wait(Stmt):
    condition: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"WAIT({self.condition})"


@dataclass(frozen=True)
class Signal(Stmt):
    condition: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"SIGNAL({self.condition})"


@dataclass(frozen=True)
class Skip(Stmt):
    label: Optional[str] = None

    def describe(self) -> str:
        return "SKIP"


# ---------------------------------------------------------------------------
# Monitor and caller declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Entry:
    """One ENTRY PROCEDURE."""

    name: str
    params: Tuple[str, ...] = ()
    body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class MonitorDecl:
    """A monitor: variables, conditions, entries, initialization."""

    name: str
    variables: Tuple[Tuple[str, Any], ...] = ()
    conditions: Tuple[str, ...] = ()
    entries: Tuple[Entry, ...] = ()
    init: Tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        names = [e.name for e in self.entries]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"monitor {self.name!r} declares duplicate entries"
            )
        var_names = [v for v, _init in self.variables]
        if len(var_names) != len(set(var_names)):
            raise SpecificationError(
                f"monitor {self.name!r} declares duplicate variables"
            )

    def entry(self, name: str) -> Entry:
        for e in self.entries:
            if e.name == name:
                return e
        raise SpecificationError(f"monitor {self.name!r} has no entry {name!r}")

    def variable_names(self) -> Tuple[str, ...]:
        return tuple(v for v, _init in self.variables)


# -- caller scripts ----------------------------------------------------------


class CallerOp:
    """One step of a caller script (outside the monitor)."""


@dataclass(frozen=True)
class CallOp(CallerOp):
    """Call a monitor entry with literal arguments.

    ``copy_out`` snapshots monitor variables into caller locals when the
    entry completes -- the language's stand-in for entry return values
    (``(monitor_var, local_name)`` pairs; no events are emitted for the
    copy, it models the value travelling back in the call return).
    """

    entry: str
    args: Tuple[Tuple[str, Any], ...] = ()
    copy_out: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def make(entry: str, copy_out: Sequence[Tuple[str, str]] = (),
             **args: Any) -> "CallOp":
        return CallOp(entry, tuple(sorted(args.items())), tuple(copy_out))

    def describe(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.args)
        return f"CALL {self.entry}({args})"


@dataclass(frozen=True)
class DataReadOp(CallerOp):
    """Read a data element outside the monitor (emits Getval there)."""

    element: str

    def describe(self) -> str:
        return f"READ {self.element}"


@dataclass(frozen=True)
class DataWriteOp(CallerOp):
    """Write a data element outside the monitor (emits Assign there)."""

    element: str
    value: Any

    def describe(self) -> str:
        return f"WRITE {self.element} := {self.value!r}"


@dataclass(frozen=True)
class NoteOp(CallerOp):
    """Emit a bookkeeping event at the caller's own element.

    Used for the problem-level events of caller scripts (``u.Read``,
    ``u.FinishRead``) that bracket the monitor calls.  A parameter value
    may be a callable; it receives the caller's locals dict at emission
    time (so ``FinishRead`` can report the value actually read).
    """

    event_class: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(event_class: str, **params: Any) -> "NoteOp":
        return NoteOp(event_class, tuple(sorted(params.items())))

    def describe(self) -> str:
        return f"NOTE {self.event_class}"


@dataclass(frozen=True)
class Caller:
    """One user process: a name and a straight-line script."""

    name: str
    script: Tuple[CallerOp, ...] = ()


@dataclass(frozen=True)
class MonitorSystem:
    """A monitor plus its callers plus external data elements."""

    monitor: MonitorDecl
    callers: Tuple[Caller, ...]
    data_elements: Tuple[Tuple[str, Any], ...] = ()  # (element name, initial)

    def __post_init__(self) -> None:
        names = [c.name for c in self.callers]
        if len(names) != len(set(names)):
            raise SpecificationError("duplicate caller names")
