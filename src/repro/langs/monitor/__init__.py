"""The Monitor language primitive: AST, Hoare-semantics interpreter
instrumented to emit GEM computations, the GEM description of the
Monitor itself, and the paper's monitor programs."""

from .ast import (
    Assign,
    BinOp,
    CallOp,
    Caller,
    DataReadOp,
    DataWriteOp,
    Entry,
    Expr,
    If,
    Lit,
    MonitorDecl,
    MonitorSystem,
    NoteOp,
    ParamRef,
    QueueNonEmpty,
    Signal,
    Skip,
    Stmt,
    UnOp,
    VarRef,
    Wait,
    While,
    expr,
)
from .gemspec import (
    monitor_group,
    monitor_internal_elements,
    monitor_program_spec,
)
from .interp import MonitorProgram, MonitorState
from .programs import (
    SITE_ENDREAD,
    SITE_ENDWRITE,
    SITE_STARTREAD,
    SITE_STARTWRITE,
    bounded_buffer_monitor,
    bounded_buffer_system,
    consumer_script,
    one_slot_buffer_monitor,
    one_slot_buffer_monitor_unguarded,
    one_slot_buffer_system,
    producer_script,
    reader_script,
    readers_writers_monitor,
    readers_writers_monitor_mesa,
    readers_writers_monitor_writers_priority,
    readers_writers_monitor_writers_first,
    readers_writers_system,
    tally_monitor,
    tally_system,
    writer_script,
)

__all__ = [
    # ast
    "Expr", "Lit", "VarRef", "ParamRef", "BinOp", "UnOp", "QueueNonEmpty",
    "expr", "Stmt", "Assign", "If", "While", "Wait", "Signal", "Skip",
    "Entry", "MonitorDecl", "Caller", "CallOp", "DataReadOp", "DataWriteOp",
    "NoteOp", "MonitorSystem",
    # interp
    "MonitorProgram", "MonitorState",
    # gemspec
    "monitor_program_spec", "monitor_group", "monitor_internal_elements",
    # programs
    "readers_writers_monitor", "readers_writers_monitor_writers_first",
    "readers_writers_monitor_mesa", "readers_writers_monitor_writers_priority",
    "readers_writers_system", "reader_script", "writer_script",
    "one_slot_buffer_monitor", "one_slot_buffer_monitor_unguarded",
    "one_slot_buffer_system", "bounded_buffer_monitor",
    "bounded_buffer_system", "producer_script", "consumer_script",
    "tally_monitor", "tally_system",
    "SITE_STARTREAD", "SITE_ENDREAD", "SITE_STARTWRITE", "SITE_ENDWRITE",
]
