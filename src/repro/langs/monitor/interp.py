"""Monitor semantics, instrumented to emit GEM computations.

Semantics: Hoare monitors.  One process holds the monitor lock at a
time; WAIT(c) releases the lock and queues the process on condition c
(FIFO); SIGNAL(c) with a waiter present hands the lock *directly* to the
longest-waiting process (the signaller suspends on an urgent stack and
has priority over new entrants when the lock is next released); SIGNAL
on an empty condition is a no-op.  This is the semantics the paper's
Section 9 proof relies on ("all waiting readers will be signalled before
any other process executes in the monitor" -- the cascade works because
a released reader runs immediately and its own SIGNAL releases the
next).

Instrumentation -- the "mechanical translation" of a program into a GEM
program specification.  Events are emitted at these elements (for a
monitor named ``M`` and a caller named ``u``):

===================  =======================================+===========
element              event classes
===================  ==================================================
``u``                ``Call(entry)``, ``Return(entry)``, plus any
                     :class:`~repro.langs.monitor.ast.NoteOp` classes
``M.lock``           ``Req(entry, by)``, ``Acq(by)``, ``Rel(by)``
``M.entry.<E>``      ``Begin(by)``, ``End(by)``
``M.var.<v>``        ``Assign(newval, site)``, ``Getval(oldval, site)``
``M.cond.<c>``       ``Wait(by)``, ``Signal(by)``, ``Release(by)``
``M.init``           ``Init``
data elements        ``Assign(newval)``, ``Getval(oldval)``
===================  ==================================================

Enable edges: each process's events chain in program order; a released
waiter's ``Release`` is additionally enabled by the ``Signal`` that woke
it (the paper's "Release of a wait upon a condition must be enabled by
exactly one Signal"); every lock ``Acq`` is enabled by the previous
lock ``Rel`` (or by initialization for the first one) -- the hand-off
that serialises monitor entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...core.errors import SpecificationError
from ...sim.runtime import Action, Footprint, SimpleState
from .ast import (
    Assign,
    CallOp,
    Caller,
    DataReadOp,
    DataWriteOp,
    Entry,
    ExprEnv,
    If,
    MonitorSystem,
    NoteOp,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)

#: Process status values.
SCRIPT, QUEUED, RUNNING, COND_WAITING, URGENT, DONE = (
    "script", "queued", "running", "cond-waiting", "urgent", "done",
)


@dataclass
class _Frame:
    """Execution state of one entry activation."""

    entry: Entry
    params: Dict[str, Any]
    # stack of (statement tuple, next index); innermost last
    stack: List[List]


class _ProcState:
    """Mutable per-caller state."""

    def __init__(self, caller: Caller):
        self.caller = caller
        self.pc = 0
        self.status = SCRIPT if caller.script else DONE
        self.frame: Optional[_Frame] = None
        self.locals: Dict[str, Any] = {}
        #: mesa semantics: queued to *resume* a wait, not to begin an entry
        self.resuming = False


class MonitorState(SimpleState):
    """One evolving execution of a :class:`MonitorSystem`."""

    def __init__(self, system: MonitorSystem, emit_getvals: bool = False,
                 entry_grant: str = "any", eager_reductions: bool = True,
                 semantics: str = "hoare"):
        super().__init__()
        if entry_grant not in ("any", "fifo"):
            raise SpecificationError(f"unknown entry_grant policy {entry_grant!r}")
        if semantics not in ("hoare", "mesa"):
            raise SpecificationError(f"unknown monitor semantics {semantics!r}")
        self.system = system
        self.emit_getvals = emit_getvals
        self.entry_grant = entry_grant
        #: "hoare": SIGNAL hands the lock to the released waiter
        #: immediately, the signaller suspends with priority (the
        #: semantics the paper's Section 9 proof relies on).  "mesa":
        #: SIGNAL only moves the waiter back to the entry competition
        #: and the signaller continues -- under which the paper's
        #: IF-based monitor is *incorrect* (waiters must re-test with
        #: WHILE); kept as an executable demonstration that GEM's
        #: checker detects the difference.
        self.semantics = semantics
        #: ablation switch: with False, NoteOps and CallOps branch like
        #: any other action (tenure atomicity stays on -- it is part of
        #: the Hoare semantics' determinism, not an optional reduction)
        self.eager_reductions = eager_reductions
        mon = system.monitor
        self.mname = mon.name
        self.vars: Dict[str, Any] = {name: init for name, init in mon.variables}
        self.data: Dict[str, Any] = {el: init for el, init in system.data_elements}
        self.procs: Dict[str, _ProcState] = {
            c.name: _ProcState(c) for c in system.callers
        }
        self.lock_holder: Optional[str] = None
        self.entry_queue: List[str] = []
        self.cond_queues: Dict[str, List[str]] = {c: [] for c in mon.conditions}
        self.urgent_stack: List[str] = []
        # event bookkeeping for cross-process enables
        self._last_lock_release = None   # Event: last Rel (or init tail)
        self._pending_signal: Dict[str, Any] = {}  # proc -> Signal event
        self._run_init()

    # -- elements ---------------------------------------------------------

    def lock_element(self) -> str:
        return f"{self.mname}.lock"

    def entry_element(self, entry: str) -> str:
        return f"{self.mname}.entry.{entry}"

    def var_element(self, var: str) -> str:
        return f"{self.mname}.var.{var}"

    def cond_element(self, cond: str) -> str:
        return f"{self.mname}.cond.{cond}"

    def init_element(self) -> str:
        return f"{self.mname}.init"

    # -- initialization ------------------------------------------------------

    def _run_init(self) -> None:
        proc = f"{self.mname}.<init>"
        self.emit(proc, self.init_element(), "Init")
        for stmt in self.system.monitor.init:
            if not isinstance(stmt, Assign):
                raise SpecificationError(
                    "monitor initialization supports assignments only"
                )
            self._do_assign(proc, stmt, params={}, site="init")
        self._last_lock_release = self.last_event_of(proc)

    # -- expression evaluation --------------------------------------------------

    def _env(self, params: Dict[str, Any]) -> ExprEnv:
        return ExprEnv(
            variables=self.vars,
            params=params,
            queue_nonempty=lambda cond: bool(self.cond_queues.get(cond)),
        )

    def _eval(self, proc: str, expression, params: Dict[str, Any],
              site: str) -> Any:
        if self.emit_getvals:
            for var in expression.reads():
                self.emit(
                    proc, self.var_element(var), "Getval",
                    {"oldval": self.vars[var], "site": site, "by": proc},
                )
        return expression.eval(self._env(params))

    def _do_assign(self, proc: str, stmt: Assign, params: Dict[str, Any],
                   site: str) -> None:
        value = self._eval(proc, stmt.value, params, site)
        target = stmt.var
        if stmt.index is not None:
            idx = self._eval(proc, stmt.index, params, site)
            target = f"{stmt.var}[{idx}]"
        if target not in self.vars:
            raise SpecificationError(f"unknown monitor variable {target!r}")
        self.emit(proc, self.var_element(target), "Assign",
                  {"newval": value, "site": site, "by": proc})
        self.vars[target] = value

    # -- scheduler interface ------------------------------------------------------

    def enabled(self) -> List[Action]:
        """Enabled actions, with two sound reductions applied.

        *Tenure atomicity*: acquiring the lock runs the whole tenure --
        statements, Hoare hand-off cascades, urgent resumes -- in one
        deterministic action (no other process can observe or affect
        monitor state while the lock is held, so intermediate
        interleavings produce the same partial orders).

        *Local-action priority*: if any process's next script op is a
        NoteOp (an event at its own private element, independent of every
        other enabled action), only the first such action is offered --
        the partial orders generated are unchanged, the state space
        shrinks exponentially.

        *Eager calls* (``entry_grant="any"`` only): a pending CallOp is
        taken immediately, without branching against other actions.
        Issuing a call only adds the process to the entry queue; under
        nondeterministic granting the candidate set at every future
        grant becomes a superset, so every grant sequence -- and hence
        every monitor behaviour -- reachable with a later arrival is
        still reachable (the grant simply ignores the early arriver).
        Under FIFO granting arrival order is semantics, so calls branch.

        Precisely: the reduced exploration generates a subset of the
        unreduced partial orders that covers every monitor behaviour;
        the computations it omits differ only in where lock Req events
        fall within the lock's element order (no property in this
        repository reads that), verified by ``benchmarks/bench_ablation``.
        Pass ``eager_reductions=False`` to disable both for ablation.
        """
        actions: List[Action] = []
        grant_candidates = self._grant_candidates()
        for name in self.procs:
            ps = self.procs[name]
            if ps.status == SCRIPT:
                op = ps.caller.script[ps.pc]
                action = Action(name, self._op_label(op), ("op", name))
                if self.eager_reductions:
                    if isinstance(op, NoteOp):
                        return [action]
                    if isinstance(op, CallOp) and self.entry_grant == "any":
                        return [action]
                actions.append(action)
            elif ps.status == QUEUED and name in grant_candidates:
                actions.append(Action(name, "acquire", ("acquire", name)))
        return actions

    def _grant_candidates(self) -> List[str]:
        """Queued processes that may acquire the lock right now."""
        if self.lock_holder is not None or self.urgent_stack:
            return []
        if not self.entry_queue:
            return []
        if self.entry_grant == "fifo":
            return [self.entry_queue[0]]
        return list(self.entry_queue)

    def _urgent_can_resume(self, name: str) -> bool:
        return (
            self.lock_holder is None
            and bool(self.urgent_stack)
            and self.urgent_stack[-1] == name
        )

    @staticmethod
    def _op_label(op) -> str:
        return op.describe() if hasattr(op, "describe") else type(op).__name__

    def is_final(self) -> bool:
        return all(ps.status == DONE for ps in self.procs.values())

    def step(self, action: Action) -> None:
        kind, name = action.key
        if kind == "op":
            self._step_script(name)
        elif kind == "acquire":
            self._acquire(name)
            self._run_tenure()
        else:
            raise SpecificationError(f"unknown action {action}")

    def _run_tenure(self) -> None:
        """Run the monitor until the lock is free and no signaller is
        suspended: statements, hand-offs, and urgent resumes are all
        deterministic once a process holds the lock."""
        while True:
            if self.lock_holder is not None:
                self._step_statement(self.lock_holder)
            elif self.urgent_stack:
                self._resume(self.urgent_stack[-1])
            else:
                return

    # -- script ops --------------------------------------------------------------

    def _advance_script(self, ps: _ProcState) -> None:
        ps.pc += 1
        if ps.pc >= len(ps.caller.script):
            ps.status = DONE
        else:
            ps.status = SCRIPT

    def _step_script(self, name: str) -> None:
        ps = self.procs[name]
        op = ps.caller.script[ps.pc]
        if isinstance(op, CallOp):
            entry = self.system.monitor.entry(op.entry)
            args = dict(op.args)
            missing = set(entry.params) - set(args)
            extra = set(args) - set(entry.params)
            if missing or extra:
                raise SpecificationError(
                    f"call to entry {entry.name!r}: missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)}"
                )
            self.emit(name, name, "Call", {"entry": op.entry})
            self.emit(name, self.lock_element(), "Req",
                      {"entry": op.entry, "by": name})
            self.entry_queue.append(name)
            ps.status = QUEUED
            ps.frame = _Frame(entry, args, [[list(entry.body), 0]])
            # pc advances when the entry completes
        elif isinstance(op, DataReadOp):
            if op.element not in self.data:
                raise SpecificationError(f"unknown data element {op.element!r}")
            value = self.data[op.element]
            self.emit(name, op.element, "Getval", {"oldval": value, "by": name})
            ps.locals["last_read"] = value
            self._advance_script(ps)
        elif isinstance(op, DataWriteOp):
            if op.element not in self.data:
                raise SpecificationError(f"unknown data element {op.element!r}")
            value = op.value(ps.locals) if callable(op.value) else op.value
            self.emit(name, op.element, "Assign", {"newval": value, "by": name})
            self.data[op.element] = value
            self._advance_script(ps)
        elif isinstance(op, NoteOp):
            params = {
                k: (v(ps.locals) if callable(v) else v) for k, v in op.params
            }
            self.emit(name, name, op.event_class, params)
            self._advance_script(ps)
        else:
            raise SpecificationError(f"unknown caller op {op!r}")

    # -- lock transitions -----------------------------------------------------------

    def _acquire(self, name: str) -> None:
        ps = self.procs[name]
        self.entry_queue.remove(name)
        extra = [self._last_lock_release] if self._last_lock_release is not None else []
        self.emit(name, self.lock_element(), "Acq", {"by": name},
                  extra_enables=extra)
        assert ps.frame is not None
        if ps.resuming:
            # mesa: re-entering mid-entry after a signalled wait
            ps.resuming = False
        else:
            self.emit(name, self.entry_element(ps.frame.entry.name), "Begin",
                      {"by": name, **ps.frame.params})
        self.lock_holder = name
        ps.status = RUNNING

    def _resume(self, name: str) -> None:
        ps = self.procs[name]
        self.urgent_stack.pop()
        extra = [self._last_lock_release] if self._last_lock_release is not None else []
        self.emit(name, self.lock_element(), "Acq", {"by": name},
                  extra_enables=extra)
        self.lock_holder = name
        ps.status = RUNNING

    def _release_lock(self, name: str) -> None:
        rel = self.emit(name, self.lock_element(), "Rel", {"by": name})
        self._last_lock_release = rel
        self.lock_holder = None

    # -- statement execution ------------------------------------------------------------

    def _site(self, ps: _ProcState, stmt: Stmt) -> str:
        label = stmt.label or stmt.describe()
        return f"{ps.frame.entry.name}:{label}"

    def _next_statement(self, frame: _Frame) -> Optional[Stmt]:
        while frame.stack:
            body, idx = frame.stack[-1]
            if idx >= len(body):
                frame.stack.pop()
                continue
            frame.stack[-1][1] = idx + 1
            return body[idx]
        return None

    def _step_statement(self, name: str) -> None:
        ps = self.procs[name]
        frame = ps.frame
        assert frame is not None
        stmt = self._next_statement(frame)
        if stmt is None:
            self._finish_entry(name)
            return
        site = self._site(ps, stmt)
        if isinstance(stmt, Assign):
            self._do_assign(name, stmt, frame.params, site)
        elif isinstance(stmt, If):
            cond = self._eval(name, stmt.condition, frame.params, site)
            branch = stmt.then_branch if cond else stmt.else_branch
            if branch:
                frame.stack.append([list(branch), 0])
        elif isinstance(stmt, While):
            cond = self._eval(name, stmt.condition, frame.params, site)
            if cond:
                # body then re-test: push the While again, then the body
                frame.stack.append([[stmt], 0])
                frame.stack.append([list(stmt.body), 0])
        elif isinstance(stmt, Wait):
            if stmt.condition not in self.cond_queues:
                raise SpecificationError(f"unknown condition {stmt.condition!r}")
            self.emit(name, self.cond_element(stmt.condition), "Wait",
                      {"by": name})
            self.cond_queues[stmt.condition].append(name)
            self._release_lock(name)
            ps.status = COND_WAITING
        elif isinstance(stmt, Signal):
            queue = self.cond_queues.get(stmt.condition)
            if queue is None:
                raise SpecificationError(f"unknown condition {stmt.condition!r}")
            sig = self.emit(name, self.cond_element(stmt.condition), "Signal",
                            {"by": name})
            if queue and self.semantics == "hoare":
                woken = queue.pop(0)
                self._release_lock(name)
                self.urgent_stack.append(name)
                ps.status = URGENT
                # direct hand-off: the woken process re-enters immediately
                wps = self.procs[woken]
                self.emit(woken, self.cond_element(stmt.condition), "Release",
                          {"by": woken}, extra_enables=[sig])
                extra = [self._last_lock_release]
                self.emit(woken, self.lock_element(), "Acq", {"by": woken},
                          extra_enables=extra)
                self.lock_holder = woken
                wps.status = RUNNING
            elif queue:  # mesa: waiter rejoins the entry competition
                woken = queue.pop(0)
                wps = self.procs[woken]
                self.emit(woken, self.cond_element(stmt.condition), "Release",
                          {"by": woken}, extra_enables=[sig])
                self.entry_queue.append(woken)
                wps.status = QUEUED
                wps.resuming = True
                # the signaller keeps the lock and continues
            # signal on empty queue: no-op, signaller keeps the lock
        elif isinstance(stmt, Skip):
            pass
        else:
            raise SpecificationError(f"unknown statement {stmt!r}")

    def _finish_entry(self, name: str) -> None:
        ps = self.procs[name]
        assert ps.frame is not None
        self.emit(name, self.entry_element(ps.frame.entry.name), "End",
                  {"by": name})
        self._release_lock(name)
        self.emit(name, name, "Return", {"entry": ps.frame.entry.name})
        call_op = ps.caller.script[ps.pc]
        if isinstance(call_op, CallOp):
            for mvar, local in call_op.copy_out:
                if mvar not in self.vars:
                    raise SpecificationError(
                        f"copy_out of unknown monitor variable {mvar!r}")
                ps.locals[local] = self.vars[mvar]
        ps.frame = None
        self._advance_script(ps)

    # -- partial-order reduction hooks (repro.engine.por) ------------------
    #
    # Tokens: ``("caller", name)`` covers a process's private element and
    # locals; ``("mon", self.mname)`` covers everything inside the
    # monitor (lock, entry, var and cond elements, monitor variables,
    # the queues); ``("data", el)`` covers one shared data element.
    # Everything is a *write*: emitting any event at a shared element
    # appends to that element's order, so even a DataReadOp (whose
    # Getval is recorded at the data element) does not commute with
    # another read of the same element -- the two orders are distinct
    # computations.
    #
    # Tenure attribution: an acquire may emit events at *other*
    # processes' private elements (Hoare hand-off Return, copy_out into
    # their locals).  Those processes are QUEUED or COND_WAITING: they
    # have no enabled action, and their pc still sits at the CallOp, so
    # their remaining footprint includes ``("mon", m)``.  The acquire's
    # own ``("mon", m)`` write therefore conflicts with every mid-entry
    # process, and the ample check never commutes an acquire past
    # anything it could touch.

    def _op_footprint(self, name: str, op) -> Optional[Footprint]:
        mine = ("caller", name)
        if isinstance(op, NoteOp):
            return Footprint(writes=frozenset({mine}))
        if isinstance(op, (DataReadOp, DataWriteOp)):
            return Footprint(writes=frozenset({mine, ("data", op.element)}))
        if isinstance(op, CallOp):
            return Footprint(writes=frozenset({mine, ("mon", self.mname)}))
        return None

    def por_action_footprint(self, action: Action) -> Optional[Footprint]:
        kind, name = action.key  # type: ignore[misc]
        if kind == "acquire":
            return Footprint(
                writes=frozenset({("caller", name), ("mon", self.mname)}))
        ps = self.procs[name]
        return self._op_footprint(name, ps.caller.script[ps.pc])

    def por_remaining_footprints(self) -> Dict[str, Footprint]:
        out: Dict[str, Footprint] = {}
        for name, ps in self.procs.items():
            if ps.status == DONE:
                continue
            writes = {("caller", name)}
            if ps.status != SCRIPT:
                writes.add(("mon", self.mname))
            for op in ps.caller.script[ps.pc:]:
                if isinstance(op, CallOp):
                    writes.add(("mon", self.mname))
                elif isinstance(op, (DataReadOp, DataWriteOp)):
                    writes.add(("data", op.element))
            out[name] = Footprint(writes=frozenset(writes))
        return out


@dataclass(frozen=True)
class MonitorProgram:
    """A :class:`~repro.sim.runtime.Program` for a monitor system."""

    system: MonitorSystem
    emit_getvals: bool = False
    entry_grant: str = "any"
    eager_reductions: bool = True
    semantics: str = "hoare"

    def initial_state(self) -> MonitorState:
        return MonitorState(self.system, self.emit_getvals, self.entry_grant,
                            self.eager_reductions, self.semantics)
