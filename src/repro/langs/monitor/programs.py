"""The paper's Monitor programs.

* :func:`readers_writers_monitor` -- the ReadersWriters monitor of
  Section 9, verbatim: ``readernum`` positive while reading, negative
  while writing; readers' priority comes from EndWrite signalling
  ``readqueue`` first and from the StartRead signal cascade.
* :func:`readers_writers_monitor_writers_first` -- a *mutant* used as a
  negative control: EndWrite signals ``writequeue`` first, so readers'
  priority fails (the checker must catch this).
* :func:`one_slot_buffer_monitor` / :func:`bounded_buffer_monitor` --
  monitor solutions to the One-Slot and Bounded Buffer problems
  (Section 11 reports verifying monitor solutions to both).

Plus system builders that surround each monitor with caller scripts
emitting the problem-level events (``u.Read``, ``Deposit`` ...).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .ast import (
    Assign,
    BinOp,
    CallOp,
    Caller,
    DataReadOp,
    DataWriteOp,
    Entry,
    If,
    Lit,
    MonitorDecl,
    MonitorSystem,
    NoteOp,
    ParamRef,
    QueueNonEmpty,
    Signal,
    VarRef,
    Wait,
)

# -- Readers/Writers ---------------------------------------------------------

#: Statement-site labels used by the verification correspondence (the
#: paper's Table in Section 9: StartRead ↔ readernum := readernum + 1...)
SITE_STARTREAD = "StartRead:inc"
SITE_ENDREAD = "EndRead:dec"
SITE_STARTWRITE = "StartWrite:set"
SITE_ENDWRITE = "EndWrite:clear"


def readers_writers_monitor(name: str = "rw") -> MonitorDecl:
    """The ReadersWriters monitor of Section 9, statement for statement."""
    readernum = VarRef("readernum")
    return MonitorDecl(
        name=name,
        variables=(("readernum", 0),),
        conditions=("readqueue", "writequeue"),
        entries=(
            Entry("StartRead", (), (
                If(BinOp("<", readernum, Lit(0)), (Wait("readqueue"),)),
                Assign("readernum", BinOp("+", readernum, Lit(1)),
                       label="inc"),
                Signal("readqueue"),
            )),
            Entry("EndRead", (), (
                Assign("readernum", BinOp("-", readernum, Lit(1)),
                       label="dec"),
                If(BinOp("==", readernum, Lit(0)), (Signal("writequeue"),)),
            )),
            Entry("StartWrite", (), (
                If(BinOp("!=", readernum, Lit(0)), (Wait("writequeue"),)),
                Assign("readernum", Lit(-1), label="set"),
            )),
            Entry("EndWrite", (), (
                Assign("readernum", Lit(0), label="clear"),
                If(QueueNonEmpty("readqueue"),
                   (Signal("readqueue"),),
                   (Signal("writequeue"),)),
            )),
        ),
        init=(Assign("readernum", Lit(0)),),
    )


def readers_writers_monitor_writers_first(name: str = "rw") -> MonitorDecl:
    """MUTANT: EndWrite prefers the write queue.  Readers' priority fails."""
    correct = readers_writers_monitor(name)
    entries = []
    for e in correct.entries:
        if e.name != "EndWrite":
            entries.append(e)
            continue
        entries.append(Entry("EndWrite", (), (
            Assign("readernum", Lit(0), label="clear"),
            If(QueueNonEmpty("writequeue"),
               (Signal("writequeue"),),
               (Signal("readqueue"),)),
        )))
    return MonitorDecl(name, correct.variables, correct.conditions,
                       tuple(entries), correct.init)


def readers_writers_monitor_writers_priority(name: str = "rw") -> MonitorDecl:
    """The classic *writers-priority* monitor (Hoare semantics).

    A ``waitingwriters`` counter makes arriving readers defer to any
    waiting writer; EndWrite prefers the write queue.  Satisfies the
    ``writers-priority`` variant of the problem and fails
    ``readers-priority`` -- the other corner of the E5 matrix.
    """
    readernum = VarRef("readernum")
    waiting = VarRef("waitingwriters")
    return MonitorDecl(
        name=name,
        variables=(("readernum", 0), ("waitingwriters", 0)),
        conditions=("readqueue", "writequeue"),
        entries=(
            Entry("StartRead", (), (
                If(BinOp("or",
                         BinOp("<", readernum, Lit(0)),
                         BinOp(">", waiting, Lit(0))),
                   (Wait("readqueue"),)),
                Assign("readernum", BinOp("+", readernum, Lit(1)),
                       label="inc"),
                # cascade wakes further readers only while no writer waits
                If(BinOp("==", waiting, Lit(0)), (Signal("readqueue"),)),
            )),
            Entry("EndRead", (), (
                Assign("readernum", BinOp("-", readernum, Lit(1)),
                       label="dec"),
                If(BinOp("==", readernum, Lit(0)), (Signal("writequeue"),)),
            )),
            Entry("StartWrite", (), (
                Assign("waitingwriters", BinOp("+", waiting, Lit(1))),
                If(BinOp("!=", readernum, Lit(0)), (Wait("writequeue"),)),
                Assign("waitingwriters", BinOp("-", waiting, Lit(1))),
                Assign("readernum", Lit(-1), label="set"),
            )),
            Entry("EndWrite", (), (
                Assign("readernum", Lit(0), label="clear"),
                If(QueueNonEmpty("writequeue"),
                   (Signal("writequeue"),),
                   (Signal("readqueue"),)),
            )),
        ),
        init=(Assign("readernum", Lit(0)),),
    )


def readers_writers_monitor_mesa(name: str = "rw") -> MonitorDecl:
    """The WHILE-based ReadersWriters monitor, correct under *Mesa*
    (signal-and-continue) semantics.

    Under Mesa a signalled waiter rejoins the entry competition and must
    re-test its condition; the paper's IF-based monitor then violates
    mutual exclusion (demonstrated in tests/benchmarks).  This variant
    re-tests with WHILE, restoring mutual exclusion -- but not readers'
    priority, which Mesa's barging inherently breaks.
    """
    from .ast import While

    readernum = VarRef("readernum")
    return MonitorDecl(
        name=name,
        variables=(("readernum", 0),),
        conditions=("readqueue", "writequeue"),
        entries=(
            Entry("StartRead", (), (
                While(BinOp("<", readernum, Lit(0)), (Wait("readqueue"),)),
                Assign("readernum", BinOp("+", readernum, Lit(1)),
                       label="inc"),
                Signal("readqueue"),
            )),
            Entry("EndRead", (), (
                Assign("readernum", BinOp("-", readernum, Lit(1)),
                       label="dec"),
                If(BinOp("==", readernum, Lit(0)), (Signal("writequeue"),)),
            )),
            Entry("StartWrite", (), (
                While(BinOp("!=", readernum, Lit(0)), (Wait("writequeue"),)),
                Assign("readernum", Lit(-1), label="set"),
            )),
            Entry("EndWrite", (), (
                Assign("readernum", Lit(0), label="clear"),
                If(QueueNonEmpty("readqueue"),
                   (Signal("readqueue"),),
                   (Signal("writequeue"),)),
            )),
        ),
        init=(Assign("readernum", Lit(0)),),
    )


def reader_script(loc: int) -> Tuple:
    """u.Read ... u.FinishRead around StartRead/EndRead calls."""
    return (
        NoteOp.make("Read", loc=loc),
        CallOp.make("StartRead"),
        DataReadOp(f"db.data[{loc}]"),
        CallOp.make("EndRead"),
        NoteOp.make("FinishRead", info=lambda locals: locals.get("last_read")),
    )


def writer_script(loc: int, info: Any) -> Tuple:
    return (
        NoteOp.make("Write", loc=loc, info=info),
        CallOp.make("StartWrite"),
        DataWriteOp(f"db.data[{loc}]", info),
        CallOp.make("EndWrite"),
        NoteOp.make("FinishWrite"),
    )


def readers_writers_system(
    n_readers: int = 2,
    n_writers: int = 1,
    n_locs: int = 1,
    monitor: Optional[MonitorDecl] = None,
    transactions_per_caller: int = 1,
) -> MonitorSystem:
    """A complete Readers/Writers monitor system.

    Readers read location ``1 + (i mod n_locs)``; writer ``j`` writes
    value ``100 + j`` to its location, so data correctness is checkable.
    """
    callers: List[Caller] = []
    for i in range(n_readers):
        loc = 1 + (i % n_locs)
        script = reader_script(loc) * transactions_per_caller
        callers.append(Caller(f"reader{i + 1}", script))
    for j in range(n_writers):
        loc = 1 + (j % n_locs)
        script = writer_script(loc, 100 + j) * transactions_per_caller
        callers.append(Caller(f"writer{j + 1}", script))
    return MonitorSystem(
        monitor=monitor or readers_writers_monitor(),
        callers=tuple(callers),
        data_elements=tuple(
            (f"db.data[{loc}]", 0) for loc in range(1, n_locs + 1)
        ),
    )


# -- One-Slot Buffer -----------------------------------------------------------

def one_slot_buffer_monitor(name: str = "osb") -> MonitorDecl:
    """Monitor solution to the One-Slot Buffer problem.

    One slot; Deposit blocks while full, Remove blocks while empty.
    ``taken`` carries the removed value out (via CallOp.copy_out).
    """
    return MonitorDecl(
        name=name,
        variables=(("full", 0), ("slot", None), ("taken", None)),
        conditions=("nonfull", "nonempty"),
        entries=(
            Entry("Deposit", ("item",), (
                If(BinOp("==", VarRef("full"), Lit(1)), (Wait("nonfull"),)),
                Assign("slot", ParamRef("item"), label="store"),
                Assign("full", Lit(1), label="fill"),
                Signal("nonempty"),
            )),
            Entry("Remove", (), (
                If(BinOp("==", VarRef("full"), Lit(0)), (Wait("nonempty"),)),
                Assign("taken", VarRef("slot"), label="take"),
                Assign("full", Lit(0), label="drain"),
                Signal("nonfull"),
            )),
        ),
        init=(Assign("full", Lit(0)),),
    )


def one_slot_buffer_monitor_unguarded(name: str = "osb") -> MonitorDecl:
    """MUTANT: Remove does not wait for a deposit -- may take an empty slot."""
    correct = one_slot_buffer_monitor(name)
    entries = []
    for e in correct.entries:
        if e.name != "Remove":
            entries.append(e)
            continue
        entries.append(Entry("Remove", (), (
            Assign("taken", VarRef("slot"), label="take"),
            Assign("full", Lit(0), label="drain"),
            Signal("nonfull"),
        )))
    return MonitorDecl(name, correct.variables, correct.conditions,
                       tuple(entries), correct.init)


def producer_script(items: Sequence[Any]) -> Tuple:
    ops: List = []
    for item in items:
        ops.append(NoteOp.make("Deposit", item=item))
        ops.append(CallOp.make("Deposit", item=item))
        ops.append(NoteOp.make("DepositDone", item=item))
    return tuple(ops)


def consumer_script(n_items: int) -> Tuple:
    ops: List = []
    for _ in range(n_items):
        ops.append(NoteOp.make("Remove"))
        ops.append(CallOp.make("Remove", copy_out=[("taken", "taken")]))
        ops.append(NoteOp.make("RemoveDone",
                               item=lambda locals: locals.get("taken")))
    return tuple(ops)


def one_slot_buffer_system(
    items: Sequence[Any] = (1, 2, 3),
    monitor: Optional[MonitorDecl] = None,
) -> MonitorSystem:
    """One producer depositing ``items``, one consumer removing as many."""
    return MonitorSystem(
        monitor=monitor or one_slot_buffer_monitor(),
        callers=(
            Caller("producer", producer_script(items)),
            Caller("consumer", consumer_script(len(items))),
        ),
    )


# -- Bounded Buffer ---------------------------------------------------------------

def bounded_buffer_monitor(capacity: int, name: str = "bb") -> MonitorDecl:
    """Monitor solution to the Bounded Buffer problem (circular buffer)."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    variables: List[Tuple[str, Any]] = [
        ("count", 0), ("inp", 0), ("outp", 0), ("taken", None),
    ]
    variables += [(f"buf[{i}]", None) for i in range(capacity)]
    n = Lit(capacity)
    return MonitorDecl(
        name=name,
        variables=tuple(variables),
        conditions=("nonfull", "nonempty"),
        entries=(
            Entry("Deposit", ("item",), (
                If(BinOp("==", VarRef("count"), n), (Wait("nonfull"),)),
                Assign("buf", ParamRef("item"), label="store",
                       index=VarRef("inp")),
                Assign("inp", BinOp("%", BinOp("+", VarRef("inp"), Lit(1)), n)),
                Assign("count", BinOp("+", VarRef("count"), Lit(1)),
                       label="fill"),
                Signal("nonempty"),
            )),
            Entry("Remove", (), (
                If(BinOp("==", VarRef("count"), Lit(0)), (Wait("nonempty"),)),
                Assign("taken", VarRef("buf", VarRef("outp")), label="take"),
                Assign("outp", BinOp("%", BinOp("+", VarRef("outp"), Lit(1)), n)),
                Assign("count", BinOp("-", VarRef("count"), Lit(1)),
                       label="drain"),
                Signal("nonfull"),
            )),
        ),
        init=(Assign("count", Lit(0)),),
    )


def bounded_buffer_system(
    capacity: int = 2,
    items: Sequence[Any] = (1, 2, 3),
    n_consumers: int = 1,
    monitor: Optional[MonitorDecl] = None,
) -> MonitorSystem:
    """Producer(s) deposit ``items``; consumers share the removals."""
    per = len(items) // n_consumers
    extra = len(items) % n_consumers
    consumers = []
    for i in range(n_consumers):
        take = per + (1 if i < extra else 0)
        consumers.append(Caller(f"consumer{i + 1}", consumer_script(take)))
    return MonitorSystem(
        monitor=monitor or bounded_buffer_monitor(capacity),
        callers=(Caller("producer", producer_script(items)), *consumers),
    )


# -- Tally -------------------------------------------------------------------

def tally_monitor(name: str = "tally") -> MonitorDecl:
    """A trivial counting monitor: ``Bump`` increments a shared tally.

    The monitor itself is correct in every variant of the tally system;
    it exists to put a monitor-lock protocol (and, without eager
    reductions, its interleavings) between the workers' marks.
    """
    count = VarRef("count")
    return MonitorDecl(
        name=name,
        variables=(("count", 0),),
        conditions=(),
        entries=(
            Entry("Bump", (), (
                Assign("count", BinOp("+", count, Lit(1)), label="bump"),
            )),
        ),
        init=(Assign("count", Lit(0)),),
    )


def tally_system(
    workers: int = 2,
    rounds: int = 3,
    mutant: bool = False,
) -> MonitorSystem:
    """``workers`` callers each do ``rounds`` of (note ``Mark``, call Bump).

    The problem spec (:func:`repro.problems.ring.tally_spec`) forbids
    three marks with the same ``w`` stamp.  The correct variant stamps
    each mark uniquely (``worker1:0``, ``worker1:1``, ...); the mutant
    stamps every mark with just the worker's name, so with ``rounds >=
    3`` every single execution violates the budget -- and does so within
    the first few scheduler steps of some worker, which is exactly the
    early-violation shape the restriction automata prune.
    """
    callers = []
    for i in range(workers):
        name = f"worker{i + 1}"
        script = []
        for r in range(rounds):
            stamp = name if mutant else f"{name}:{r}"
            script.append(NoteOp.make("Mark", w=stamp))
            script.append(CallOp.make("Bump"))
        callers.append(Caller(name, tuple(script)))
    return MonitorSystem(monitor=tally_monitor(), callers=tuple(callers),
                         data_elements=())
