"""GEM description of the Monitor primitive (Sections 9, 11).

The paper describes the Monitor as a GEM group type::

    Monitor = GROUP TYPE(lock: MonitorLock,
                         {entry}: SET OF MonitorEntry,
                         {cond}:  SET OF Condition,
                         init:    Initialization,
                         {var}:   SET OF Variable)
        PORTS(lock.Req)
        RESTRICTIONS  -- rules for waiting and signalling, initialization...

:func:`monitor_program_spec` instantiates that description for one
concrete :class:`~repro.langs.monitor.ast.MonitorSystem`: the monitor
group with its lock/entry/condition/variable/init elements and
``lock.Req`` as the only port, the caller and data elements outside,
and the monitor-primitive restrictions:

* ``signal-enables-release`` -- per condition, the paper's own example of
  the prerequisite abbreviation: "Release of a wait upon a condition
  must be enabled by exactly one Signal, and every Signal can enable
  only one Release";
* ``wait-before-release`` -- a Release is always preceded, at its
  condition element and by the same process, by a Wait;
* ``lock-alternation`` -- Acq and Rel events strictly alternate at the
  lock element (one holder at a time);
* ``entries-totally-ordered`` -- the property the paper reports proving
  of the Monitor ("sequential execution of monitor entries"): all events
  at monitor-internal elements are totally ordered by the temporal
  order;
* ``req-before-acq`` -- a process acquires the lock for an entry only
  after requesting it.

A computation produced by :class:`~repro.langs.monitor.interp.MonitorProgram`
should be *legal* with respect to this specification -- that is the
mechanical content of "translation of a program into a GEM program
specification"; the test suite enforces it for every program in
:mod:`repro.langs.monitor.programs`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ...core import (
    ClassAt,
    ElementDecl,
    EventClass,
    EventClassRef,
    GroupDecl,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
    prerequisite,
)
from .ast import Caller, CallOp, DataReadOp, DataWriteOp, MonitorSystem, NoteOp


def _value(*names: str) -> Tuple[ParamSpec, ...]:
    return tuple(ParamSpec(n, "VALUE") for n in names)


def _caller_event_classes(caller: Caller) -> List[EventClass]:
    classes: Dict[str, EventClass] = {
        "Call": EventClass("Call", _value("entry")),
        "Return": EventClass("Return", _value("entry")),
    }
    for op in caller.script:
        if isinstance(op, NoteOp) and op.event_class not in classes:
            classes[op.event_class] = EventClass(
                op.event_class, _value(*[k for k, _v in op.params])
            )
    return list(classes.values())


def monitor_internal_elements(system: MonitorSystem) -> List[str]:
    """Element names inside the monitor group (lock, entries, conds, vars, init)."""
    m = system.monitor.name
    out = [f"{m}.lock", f"{m}.init"]
    out += [f"{m}.entry.{e.name}" for e in system.monitor.entries]
    out += [f"{m}.cond.{c}" for c in system.monitor.conditions]
    out += [f"{m}.var.{v}" for v in system.monitor.variable_names()]
    return out


def _totally_ordered_restriction(name: str, elements: Sequence[str]) -> Restriction:
    """All events at ``elements`` pairwise ordered by the temporal order."""
    element_set = set(elements)

    def check(history, env) -> bool:
        comp = history.computation
        events = [
            ev.eid
            for ev in comp.events
            if ev.element in element_set and history.occurred(ev.eid)
        ]
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if not (
                    comp.temporally_precedes(a, b)
                    or comp.temporally_precedes(b, a)
                ):
                    return False
        return True

    return Restriction(
        name,
        PyPred(name, check),
        comment="sequential execution of monitor entries (paper §11)",
    )


def _lock_alternation_restriction(name: str, lock_element: str) -> Restriction:
    def check(history, env) -> bool:
        comp = history.computation
        held = False
        for ev in comp.events_at(lock_element):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "Acq":
                if held:
                    return False
                held = True
            elif ev.event_class == "Rel":
                if not held:
                    return False
                held = False
        return True

    return Restriction(
        name, PyPred(name, check),
        comment="Acq/Rel strictly alternate: one lock holder at a time",
    )


def _wait_before_release_restriction(name: str, cond_element: str) -> Restriction:
    def check(history, env) -> bool:
        comp = history.computation
        events = [e for e in comp.events_at(cond_element)
                  if history.occurred(e.eid)]
        waiting: Set[object] = set()
        for ev in events:  # element order
            by = ev.param("by")
            if ev.event_class == "Wait":
                waiting.add(by)
            elif ev.event_class == "Release":
                if by not in waiting:
                    return False
                waiting.discard(by)
        return True

    return Restriction(
        name, PyPred(name, check),
        comment="a Release is preceded by that process's Wait",
    )


def _req_before_acq_restriction(name: str, lock_element: str) -> Restriction:
    def check(history, env) -> bool:
        comp = history.computation
        outstanding: Dict[object, int] = {}
        for ev in comp.events_at(lock_element):
            if not history.occurred(ev.eid):
                continue
            by = ev.param("by")
            if ev.event_class == "Req":
                outstanding[by] = outstanding.get(by, 0) + 1
            elif ev.event_class == "Acq":
                # resumes (after wait/signal) are re-acquisitions and need
                # no fresh Req; but the count of *first* acquisitions per
                # Req must not exceed Reqs.  We track it loosely: an Acq
                # with no prior Req ever is illegal.
                if by not in outstanding:
                    return False
        return True

    return Restriction(
        name, PyPred(name, check),
        comment="no process acquires the lock before ever requesting it",
    )


def monitor_group(system: MonitorSystem) -> GroupDecl:
    """The Monitor group with PORTS(lock.Req)."""
    m = system.monitor.name
    return GroupDecl.make(
        m,
        monitor_internal_elements(system),
        ports=[EventClassRef(f"{m}.lock", "Req")],
    )


def monitor_program_spec(
    system: MonitorSystem,
    extra_restrictions: Iterable[Restriction] = (),
    thread_types: Iterable = (),
    name: str = "",
) -> Specification:
    """The GEM program specification PROG for a monitor system."""
    m = system.monitor.name
    elements: List[ElementDecl] = []

    elements.append(ElementDecl.make(
        f"{m}.lock",
        [
            EventClass("Req", _value("entry", "by")),
            EventClass("Acq", _value("by")),
            EventClass("Rel", _value("by")),
        ],
        restrictions=[
            _lock_alternation_restriction(f"{m}-lock-alternation", f"{m}.lock"),
            _req_before_acq_restriction(f"{m}-req-before-acq", f"{m}.lock"),
        ],
    ))
    elements.append(ElementDecl.make(f"{m}.init", [EventClass("Init")]))
    for entry in system.monitor.entries:
        elements.append(ElementDecl.make(
            f"{m}.entry.{entry.name}",
            [
                EventClass("Begin", _value("by", *entry.params)),
                EventClass("End", _value("by")),
            ],
        ))
    for cond in system.monitor.conditions:
        el = f"{m}.cond.{cond}"
        elements.append(ElementDecl.make(
            el,
            [
                EventClass("Wait", _value("by")),
                EventClass("Signal", _value("by")),
                EventClass("Release", _value("by")),
            ],
            restrictions=[
                Restriction(
                    f"{m}-signal-enables-release-{cond}",
                    prerequisite(ClassAt(EventClassRef(el, "Signal")),
                                 ClassAt(EventClassRef(el, "Release"))),
                    comment="Release enabled by exactly one Signal (§8.2)",
                ),
                _wait_before_release_restriction(
                    f"{m}-wait-before-release-{cond}", el),
            ],
        ))
    for var in system.monitor.variable_names():
        elements.append(ElementDecl.make(
            f"{m}.var.{var}",
            [
                EventClass("Assign", _value("newval", "site", "by")),
                EventClass("Getval", _value("oldval", "site", "by")),
            ],
        ))
    for caller in system.callers:
        elements.append(ElementDecl.make(caller.name,
                                         _caller_event_classes(caller)))
    for data_el, _init in system.data_elements:
        elements.append(ElementDecl.make(
            data_el,
            [
                EventClass("Assign", _value("newval", "by")),
                EventClass("Getval", _value("oldval", "by")),
            ],
        ))

    # The sequential-execution property covers events occurring *in
    # monitor entries or initialization code* (paper §9/§11): entry,
    # variable, condition, and init elements.  Lock Req events are
    # excluded -- a request may arrive concurrently with in-monitor
    # activity (it is issued by a process outside the monitor).
    in_entry_elements = [
        el for el in monitor_internal_elements(system)
        if el != f"{m}.lock"
    ]
    restrictions = [
        _totally_ordered_restriction(
            f"{m}-entries-totally-ordered", in_entry_elements
        ),
    ]
    restrictions.extend(extra_restrictions)

    return Specification(
        name or f"monitor-program-{m}",
        elements=elements,
        groups=[monitor_group(system)],
        restrictions=restrictions,
        thread_types=list(thread_types),
    )
