"""Abstract syntax for the CSP subset (Hoare's Communicating Sequential
Processes, as described by GEM in the paper).

The paper models CSP input/output as event classes at input (``?``) and
output (``!``) elements, with the simultaneity restriction::

    (∀ inp:?, out:!) [ inp.req ⊳ out.end ≡ out.req ⊳ inp.end ]

This subset has:

* processes with local variables (no shared state between processes);
* statements: local assignment, ``partner!value`` (Send), ``partner?var``
  (Receive), note/data-access instrumentation ops, guarded alternative
  (``Alt``) and repetitive (``Rep``) commands with boolean and I/O
  guards;
* distributed termination: a repetitive command exits when every branch
  is dead -- its boolean guard false, or its I/O guard naming a
  terminated partner (Hoare's convention).

Statements carry an optional ``label`` used as the ``site`` of emitted
events; correspondences select significant events by site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ...core.errors import SpecificationError
from ..exprs import BinOp, Expr, ExprEnv, Fn, Lit, ParamRef, UnOp, VarRef, expr


class CspStmt:
    """A CSP statement.  ``label`` names it in emitted events."""

    label: Optional[str]

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class LocalAssign(CspStmt):
    """``var := value`` on the process's own variables."""

    var: str
    value: Expr
    label: Optional[str] = None
    index: Optional[Expr] = None

    def describe(self) -> str:
        target = self.var if self.index is None else (
            f"{self.var}[{self.index.describe()}]")
        return f"{target} := {self.value.describe()}"


@dataclass(frozen=True)
class Send(CspStmt):
    """``partner ! value`` -- output command.

    ``partner`` may be an expression (evaluated against the process's
    locals when the command becomes current), enabling directed grants
    such as ``pending[0] ! GO``.
    """

    partner: Expr
    value: Expr
    label: Optional[str] = None

    def describe(self) -> str:
        return f"{self.partner.describe()} ! {self.value.describe()}"


@dataclass(frozen=True)
class Receive(CspStmt):
    """``partner ? var`` -- input command."""

    partner: Expr
    var: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"{self.partner.describe()} ? {self.var}"


@dataclass(frozen=True)
class Note(CspStmt):
    """Emit a problem-level event at the process's own element.

    Parameter values are expressions over the process's locals.
    """

    event_class: str
    params: Tuple[Tuple[str, Expr], ...] = ()
    label: Optional[str] = None

    @staticmethod
    def make(event_class: str, **params: Any) -> "Note":
        return Note(event_class,
                    tuple(sorted((k, expr(v)) for k, v in params.items())))

    def describe(self) -> str:
        return f"NOTE {self.event_class}"


@dataclass(frozen=True)
class DataRead(CspStmt):
    """Read a shared data element (outside the language) into a local."""

    element: str
    var: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"{self.var} := READ {self.element}"


@dataclass(frozen=True)
class DataWrite(CspStmt):
    """Write a shared data element (outside the language)."""

    element: str
    value: Expr
    label: Optional[str] = None

    def describe(self) -> str:
        return f"WRITE {self.element} := {self.value.describe()}"


@dataclass(frozen=True)
class CspIf(CspStmt):
    """``IF cond THEN ... ELSE ...`` -- local control flow.

    Executes silently (no events): it is pure control over local state,
    needed by server processes that dispatch on received message kinds.
    """

    condition: Expr
    then_branch: Tuple[CspStmt, ...]
    else_branch: Tuple[CspStmt, ...] = ()
    label: Optional[str] = None

    def describe(self) -> str:
        return f"IF {self.condition.describe()}"


@dataclass(frozen=True)
class Branch:
    """One guarded alternative: ``guard; io → body``.

    ``io`` (optional) is a Send or Receive; the branch is enabled when
    the boolean guard holds and the I/O can complete now.
    """

    guard: Expr = Lit(True)
    io: Optional[CspStmt] = None
    body: Tuple[CspStmt, ...] = ()

    def __post_init__(self) -> None:
        if self.io is not None and not isinstance(self.io, (Send, Receive)):
            raise SpecificationError("a branch's io guard must be Send or Receive")


@dataclass(frozen=True)
class Alt(CspStmt):
    """Alternative command ``[ g1 → ... | g2 → ... ]``.

    Blocks until some branch is enabled; aborts (checker error) if every
    boolean guard is false and no branch has an I/O guard that could
    still fire.
    """

    branches: Tuple[Branch, ...]
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.branches:
            raise SpecificationError("Alt needs at least one branch")

    def describe(self) -> str:
        return f"ALT[{len(self.branches)}]"


@dataclass(frozen=True)
class Rep(CspStmt):
    """Repetitive command ``*[ g1 → ... | g2 → ... ]``.

    Repeats until every branch is dead: boolean guard false, or I/O
    guard whose partner has terminated (distributed termination).
    """

    branches: Tuple[Branch, ...]
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.branches:
            raise SpecificationError("Rep needs at least one branch")

    def describe(self) -> str:
        return f"REP[{len(self.branches)}]"


@dataclass(frozen=True)
class CspProcess:
    """One sequential process: name, local variables, body."""

    name: str
    variables: Tuple[Tuple[str, Any], ...] = ()
    body: Tuple[CspStmt, ...] = ()

    def __post_init__(self) -> None:
        names = [v for v, _init in self.variables]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"process {self.name!r} declares duplicate variables")


@dataclass(frozen=True)
class CspSystem:
    """A closed system of CSP processes plus external data elements."""

    processes: Tuple[CspProcess, ...]
    data_elements: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        names = [p.name for p in self.processes]
        if len(names) != len(set(names)):
            raise SpecificationError("duplicate process names")

    def process(self, name: str) -> CspProcess:
        for p in self.processes:
            if p.name == name:
                return p
        raise SpecificationError(f"no process {name!r}")
