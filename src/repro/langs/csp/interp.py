"""CSP semantics, instrumented to emit GEM computations.

Communication is a rendezvous: a Send and a matching Receive execute as
one atomic scheduler action, emitting four events with the paper's
cross-enabling (Section 8.2, abbreviation 2's CSP example)::

    S.out.Req(to=R)   -- chained from S's previous event
    R.in.Req(frm=S)   -- chained from R's previous event
    S.out.End(to=R, value)   -- enabled by S.out.Req (chain) and R.in.Req
    R.in.End(frm=S, value)   -- enabled by R.in.Req (chain) and S.out.Req

so the simultaneity restriction ``inp.req ⊳ out.end ≡ out.req ⊳ inp.end``
holds by construction, and the two End events are potentially concurrent
-- exactly the paper's account of a distributed I/O exchange.  The
received value lands in the receiver's variable via an Assign event at
``R.var.<x>`` chained after ``R.in.End``.

Reductions (same soundness arguments as the monitor interpreter):
local assignments and notes are taken eagerly without branching (they
touch only the process's own elements); data-element accesses and
communications branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...core.errors import SpecificationError
from ...sim.runtime import Action, SimpleState
from ..exprs import ExprEnv
from .ast import (
    Alt,
    Branch,
    CspIf,
    CspProcess,
    CspStmt,
    CspSystem,
    DataRead,
    DataWrite,
    LocalAssign,
    Note,
    Receive,
    Rep,
    Send,
)


class _Proc:
    """Mutable per-process state."""

    def __init__(self, decl: CspProcess):
        self.decl = decl
        self.locals: Dict[str, Any] = {name: init for name, init in decl.variables}
        # stack of [stmt tuple, next index]; Rep frames are re-entered
        self.stack: List[List] = [[list(decl.body), 0]]
        self.done = not decl.body


@dataclass(frozen=True)
class _Offer:
    """One communication possibility a process currently extends."""

    process: str
    io: CspStmt  # Send or Receive
    branch: Optional[int]  # branch index when offered from Alt/Rep
    partner: str  # resolved partner name


class CspState(SimpleState):
    """One evolving execution of a :class:`CspSystem`."""

    def __init__(self, system: CspSystem):
        super().__init__()
        self.system = system
        self.procs: Dict[str, _Proc] = {p.name: _Proc(p) for p in system.processes}
        self.data: Dict[str, Any] = {el: init for el, init in system.data_elements}

    # -- elements ----------------------------------------------------------

    def in_element(self, proc: str) -> str:
        return f"{proc}.in"

    def out_element(self, proc: str) -> str:
        return f"{proc}.out"

    def var_element(self, proc: str, var: str) -> str:
        return f"{proc}.var.{var}"

    # -- control-state helpers -----------------------------------------------

    def _env(self, p: _Proc) -> ExprEnv:
        return ExprEnv(variables=p.locals)

    def _normalize(self, p: _Proc) -> None:
        """Pop exhausted frames; exit dead Reps; resolve silent Ifs."""
        while p.stack:
            frame = p.stack[-1]
            body, idx = frame
            if idx >= len(body):
                p.stack.pop()
                continue
            stmt = body[idx]
            if isinstance(stmt, Rep) and self._rep_is_dead(p, stmt):
                frame[1] = idx + 1  # exit the loop
                continue
            if isinstance(stmt, CspIf):
                frame[1] = idx + 1
                branch = (stmt.then_branch
                          if stmt.condition.eval(self._env(p))
                          else stmt.else_branch)
                if branch:
                    p.stack.append([list(branch), 0])
                continue
            break
        if not p.stack:
            p.done = True

    def _rep_is_dead(self, p: _Proc, rep: Rep) -> bool:
        """All branches dead: bool guard false or partner terminated."""
        env = self._env(p)
        for branch in rep.branches:
            if not branch.guard.eval(env):
                continue
            if branch.io is None:
                return False  # enabled body-only branch
            partner = branch.io.partner.eval(env)
            if partner in self.procs and not self.procs[partner].done:
                return False  # partner alive: branch could still fire
        return True

    def _current(self, p: _Proc) -> Optional[CspStmt]:
        self._normalize(p)
        if p.done or not p.stack:
            return None
        body, idx = p.stack[-1]
        return body[idx]

    def _advance(self, p: _Proc) -> None:
        """Move past the current statement (not used for Rep)."""
        p.stack[-1][1] += 1
        self._normalize(p)

    def _enter_branch(self, p: _Proc, stmt: CspStmt, branch_idx: Optional[int]) -> None:
        """After a branch's guard/io fired, run its body.

        For Alt the command is consumed; for Rep the frame index stays so
        the loop re-evaluates after the body; bare io statements just
        advance.
        """
        if branch_idx is None:
            self._advance(p)
            return
        assert isinstance(stmt, (Alt, Rep))
        branch = stmt.branches[branch_idx]
        if isinstance(stmt, Alt):
            p.stack[-1][1] += 1
        if branch.body:
            p.stack.append([list(branch.body), 0])
        self._normalize(p)

    # -- offers ------------------------------------------------------------------

    def _offers(self, name: str) -> List[_Offer]:
        """Communication offers the process currently extends."""
        p = self.procs[name]
        stmt = self._current(p)
        if stmt is None:
            return []
        env = self._env(p)
        if isinstance(stmt, (Send, Receive)):
            partner = str(stmt.partner.eval(env))
            if partner not in self.procs:
                raise SpecificationError(
                    f"{name} communicates with unknown process {partner!r}")
            return [_Offer(name, stmt, None, partner)]
        if isinstance(stmt, (Alt, Rep)):
            offers = []
            for i, branch in enumerate(stmt.branches):
                if branch.io is None:
                    continue
                if not branch.guard.eval(env):
                    continue
                offers.append(
                    _Offer(name, branch.io, i, str(branch.io.partner.eval(env)))
                )
            return offers
        return []

    def _bool_branches(self, name: str) -> List[int]:
        """Indices of enabled io-less branches of a current Alt/Rep."""
        p = self.procs[name]
        stmt = self._current(p)
        if not isinstance(stmt, (Alt, Rep)):
            return []
        env = self._env(p)
        return [
            i for i, b in enumerate(stmt.branches)
            if b.io is None and b.guard.eval(env)
        ]

    # -- scheduler interface -------------------------------------------------------

    def enabled(self) -> List[Action]:
        # eager local steps first (sound: own elements only)
        for name in self.procs:
            stmt = self._current(self.procs[name])
            if isinstance(stmt, (LocalAssign, Note)):
                return [Action(name, stmt.describe(), ("local", name))]

        actions: List[Action] = []
        offers: Dict[str, List[_Offer]] = {
            name: self._offers(name) for name in self.procs
        }
        for name in self.procs:
            p = self.procs[name]
            stmt = self._current(p)
            if isinstance(stmt, (DataRead, DataWrite)):
                actions.append(Action(name, stmt.describe(), ("data", name)))
                continue
            for i in self._bool_branches(name):
                actions.append(Action(name, f"branch[{i}]", ("branch", name, i)))
            # communications: let the *sender* side own the pairing to
            # avoid double-counting
            for s_offer in offers[name]:
                if not isinstance(s_offer.io, Send):
                    continue
                target = s_offer.partner
                if target not in self.procs:
                    raise SpecificationError(
                        f"{name} sends to unknown process {target!r}")
                for r_offer in offers[target]:
                    if not isinstance(r_offer.io, Receive):
                        continue
                    if r_offer.partner != name:
                        continue
                    actions.append(Action(
                        name,
                        f"{name}!{target}",
                        ("comm", name, s_offer.branch, target, r_offer.branch),
                    ))
        self._check_aborted_alts(actions)
        return actions

    def _check_aborted_alts(self, actions: List[Action]) -> None:
        """Hoare's alternative command aborts when every guard has failed."""
        for name, p in self.procs.items():
            stmt = self._current(p)
            if not isinstance(stmt, Alt):
                continue
            env = self._env(p)
            alive = False
            for branch in stmt.branches:
                if not branch.guard.eval(env):
                    continue
                if branch.io is None:
                    alive = True
                    break
                partner = branch.io.partner.eval(env)
                if partner in self.procs and not self.procs[partner].done:
                    alive = True
                    break
            if not alive:
                raise SpecificationError(
                    f"alternative command in {name!r} aborted: every guard "
                    "failed (boolean false or partner terminated)"
                )

    def is_final(self) -> bool:
        for p in self.procs.values():
            self._normalize(p)
        return all(p.done for p in self.procs.values())

    def step(self, action: Action) -> None:
        kind = action.key[0]
        if kind == "local":
            self._step_local(action.key[1])
        elif kind == "data":
            self._step_data(action.key[1])
        elif kind == "branch":
            _, name, idx = action.key
            p = self.procs[name]
            self._enter_branch(p, self._current(p), idx)
        elif kind == "comm":
            _, sname, sbranch, rname, rbranch = action.key
            self._communicate(sname, sbranch, rname, rbranch)
        else:
            raise SpecificationError(f"unknown action {action}")

    # -- execution ---------------------------------------------------------------

    def _site(self, stmt: CspStmt) -> str:
        return stmt.label or stmt.describe()

    def _step_local(self, name: str) -> None:
        p = self.procs[name]
        stmt = self._current(p)
        env = self._env(p)
        if isinstance(stmt, LocalAssign):
            value = stmt.value.eval(env)
            target = stmt.var
            if stmt.index is not None:
                target = f"{stmt.var}[{stmt.index.eval(env)}]"
            if target not in p.locals:
                raise SpecificationError(
                    f"process {name!r} has no variable {target!r}")
            self.emit(name, self.var_element(name, target), "Assign",
                      {"newval": value, "site": self._site(stmt), "by": name})
            p.locals[target] = value
        elif isinstance(stmt, Note):
            params = {k: e.eval(env) for k, e in stmt.params}
            self.emit(name, name, stmt.event_class, params)
        else:
            raise SpecificationError(f"not a local statement: {stmt}")
        self._advance(p)

    def _step_data(self, name: str) -> None:
        p = self.procs[name]
        stmt = self._current(p)
        env = self._env(p)
        if isinstance(stmt, DataRead):
            if stmt.element not in self.data:
                raise SpecificationError(f"unknown data element {stmt.element!r}")
            if stmt.var not in p.locals:
                raise SpecificationError(
                    f"process {name!r} has no variable {stmt.var!r}")
            value = self.data[stmt.element]
            self.emit(name, stmt.element, "Getval",
                      {"oldval": value, "by": name})
            p.locals[stmt.var] = value
        elif isinstance(stmt, DataWrite):
            if stmt.element not in self.data:
                raise SpecificationError(f"unknown data element {stmt.element!r}")
            value = stmt.value.eval(env)
            self.emit(name, stmt.element, "Assign",
                      {"newval": value, "by": name})
            self.data[stmt.element] = value
        else:
            raise SpecificationError(f"not a data statement: {stmt}")
        self._advance(p)

    def _communicate(self, sname: str, sbranch: Optional[int],
                     rname: Optional[str], rbranch: Optional[int]) -> None:
        sp, rp = self.procs[sname], self.procs[rname]
        s_stmt = self._current(sp)
        r_stmt = self._current(rp)
        send = s_stmt if isinstance(s_stmt, Send) else s_stmt.branches[sbranch].io
        recv = r_stmt if isinstance(r_stmt, Receive) else r_stmt.branches[rbranch].io
        value = send.value.eval(self._env(sp))

        # the sender's request carries the value it offers (the receiver
        # learns it only at its End)
        out_req = self.emit(sname, self.out_element(sname), "Req",
                            {"to": rname, "value": value})
        in_req = self.emit(rname, self.in_element(rname), "Req",
                           {"frm": sname})
        # the paper's simultaneity: each End is enabled by the partner's Req
        self.emit(sname, self.out_element(sname), "End",
                  {"to": rname, "value": value}, extra_enables=[in_req])
        in_end = self.emit(rname, self.in_element(rname), "End",
                           {"frm": sname, "value": value},
                           extra_enables=[out_req])
        # received value lands in the receiver's variable
        if recv.var not in rp.locals:
            raise SpecificationError(
                f"process {rname!r} has no variable {recv.var!r}")
        self.emit(rname, self.var_element(rname, recv.var), "Assign",
                  {"newval": value, "site": self._site(recv), "by": rname})
        rp.locals[recv.var] = value

        self._enter_branch(sp, s_stmt, sbranch)
        self._enter_branch(rp, r_stmt, rbranch)


@dataclass(frozen=True)
class CspProgram:
    """A :class:`~repro.sim.runtime.Program` for a CSP system."""

    system: CspSystem

    def initial_state(self) -> CspState:
        return CspState(self.system)
