"""GEM description of CSP (Sections 8.2, 11).

The paper models CSP I/O as input (``?``) and output (``!``) elements::

    inputset(inp?)    outputset(out!)

with the simultaneity restriction::

    (∀ inp:?, out:!) [ inp.req ⊳ out.end ≡ out.req ⊳ inp.end ]

:func:`csp_program_spec` builds the program specification for a concrete
:class:`~repro.langs.csp.ast.CspSystem`: one group per process (its own
element, its ``.in``/``.out`` I/O elements, its variables) with the End
events as ports (communication reaches into a process's group exactly
through communication completions), plus:

* ``csp-simultaneity`` -- the paper's restriction, verified per
  communication: pairing the k-th output on channel S→R with the k-th
  input, ``inp.req ⊳ out.end`` and ``out.req ⊳ inp.end`` must both hold;
* ``csp-message-values`` -- "if send enables receive, then their
  parameters must be equal" (Section 5's data-transfer reading of the
  enable relation): both End events of a communication carry the same
  value;
* ``csp-channel-counts`` -- requests and completions are balanced on
  every channel.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...core import (
    ElementDecl,
    EventClass,
    EventClassRef,
    GroupDecl,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
)
from .ast import (
    Alt,
    Branch,
    CspIf,
    CspStmt,
    CspSystem,
    Note,
    Receive,
    Rep,
    Send,
)


def _value(*names: str) -> Tuple[ParamSpec, ...]:
    return tuple(ParamSpec(n, "VALUE") for n in names)


def _walk(stmts) -> List[CspStmt]:
    out: List[CspStmt] = []
    for s in stmts:
        out.append(s)
        if isinstance(s, CspIf):
            out += _walk(s.then_branch)
            out += _walk(s.else_branch)
        elif isinstance(s, (Alt, Rep)):
            for b in s.branches:
                if b.io is not None:
                    out.append(b.io)
                out += _walk(b.body)
    return out


def _channel_events(computation, s: str, r: str):
    """The four per-communication event lists on channel s→r, in element order."""
    out_reqs = [e for e in computation.events_at(f"{s}.out")
                if e.event_class == "Req" and e.param("to") == r]
    out_ends = [e for e in computation.events_at(f"{s}.out")
                if e.event_class == "End" and e.param("to") == r]
    in_reqs = [e for e in computation.events_at(f"{r}.in")
               if e.event_class == "Req" and e.param("frm") == s]
    in_ends = [e for e in computation.events_at(f"{r}.in")
               if e.event_class == "End" and e.param("frm") == s]
    return out_reqs, out_ends, in_reqs, in_ends


def _channels(computation, process_names):
    """(sender, receiver) pairs with at least one communication."""
    seen = set()
    for s in process_names:
        for e in computation.events_at(f"{s}.out"):
            if e.event_class == "Req":
                seen.add((s, e.param("to")))
    return sorted(seen)


def simultaneity_restriction(process_names) -> Restriction:
    """The paper's CSP I/O simultaneity restriction, per communication."""
    names = tuple(process_names)

    def check(history, env) -> bool:
        comp = history.computation
        for s, r in _channels(comp, names):
            out_reqs, out_ends, in_reqs, in_ends = _channel_events(comp, s, r)
            if not (len(out_reqs) == len(out_ends) == len(in_reqs)
                    == len(in_ends)):
                return False
            for oreq, oend, ireq, iend in zip(out_reqs, out_ends,
                                              in_reqs, in_ends):
                if not comp.enables(ireq.eid, oend.eid):
                    return False
                if not comp.enables(oreq.eid, iend.eid):
                    return False
        return True

    return Restriction(
        "csp-simultaneity", PyPred("inp.req ⊳ out.end ≡ out.req ⊳ inp.end",
                                   check),
        comment="simultaneity of I/O exchange (paper §8.2)",
    )


def message_value_restriction(process_names) -> Restriction:
    """Both End events of one communication carry the same value."""
    names = tuple(process_names)

    def check(history, env) -> bool:
        comp = history.computation
        for s, r in _channels(comp, names):
            _oreqs, out_ends, _ireqs, in_ends = _channel_events(comp, s, r)
            for oend, iend in zip(out_ends, in_ends):
                if oend.param("value") != iend.param("value"):
                    return False
        return True

    return Restriction(
        "csp-message-values", PyPred("send.value = receive.value", check),
        comment="data transfer over the enable relation (paper §5)",
    )


def channel_balance_restriction(process_names) -> Restriction:
    """Req/End counts balance on every channel (no half communications)."""
    names = tuple(process_names)

    def check(history, env) -> bool:
        comp = history.computation
        for s, r in _channels(comp, names):
            out_reqs, out_ends, in_reqs, in_ends = _channel_events(comp, s, r)
            if not (len(out_reqs) == len(out_ends) == len(in_reqs)
                    == len(in_ends)):
                return False
        return True

    return Restriction(
        "csp-channel-counts", PyPred("balanced channels", check),
    )


def csp_process_group(system: CspSystem, process_name: str) -> GroupDecl:
    """One process's group: own element, I/O elements, variables.

    Shared data elements the process accesses are included as members
    too -- groups may overlap (Section 4), and a shared datum belongs to
    the community of its accessors; this is what lets the process's
    control flow pass from a data access back into its own group.
    """
    from .ast import DataRead, DataWrite

    decl = system.process(process_name)
    members = [process_name, f"{process_name}.in", f"{process_name}.out"]
    members += [f"{process_name}.var.{v}" for v, _init in decl.variables]
    data_names = {el for el, _init in system.data_elements}
    for stmt in _walk(decl.body):
        if isinstance(stmt, (DataRead, DataWrite)) and stmt.element in data_names:
            if stmt.element not in members:
                members.append(stmt.element)
    return GroupDecl.make(
        f"{process_name}.process",
        members,
        ports=[EventClassRef(f"{process_name}.in", "End"),
               EventClassRef(f"{process_name}.out", "End")],
    )


def csp_program_spec(system: CspSystem, extra_restrictions=(),
                     thread_types=(), name: str = "") -> Specification:
    """The GEM program specification PROG for a CSP system."""
    elements: List[ElementDecl] = []
    names = [p.name for p in system.processes]
    for proc in system.processes:
        note_classes: Dict[str, EventClass] = {}
        for stmt in _walk(proc.body):
            if isinstance(stmt, Note) and stmt.event_class not in note_classes:
                note_classes[stmt.event_class] = EventClass(
                    stmt.event_class, _value(*[k for k, _e in stmt.params]))
        elements.append(ElementDecl.make(proc.name, note_classes.values()))
        elements.append(ElementDecl.make(f"{proc.name}.in", [
            EventClass("Req", _value("frm")),
            EventClass("End", _value("frm", "value")),
        ]))
        elements.append(ElementDecl.make(f"{proc.name}.out", [
            EventClass("Req", _value("to", "value")),
            EventClass("End", _value("to", "value")),
        ]))
        for v, _init in proc.variables:
            elements.append(ElementDecl.make(f"{proc.name}.var.{v}", [
                EventClass("Assign", _value("newval", "site", "by")),
                EventClass("Getval", _value("oldval", "site", "by")),
            ]))
    for data_el, _init in system.data_elements:
        elements.append(ElementDecl.make(data_el, [
            EventClass("Assign", _value("newval", "by")),
            EventClass("Getval", _value("oldval", "by")),
        ]))

    groups = [csp_process_group(system, n) for n in names]
    restrictions = [
        simultaneity_restriction(names),
        message_value_restriction(names),
        channel_balance_restriction(names),
    ]
    restrictions.extend(extra_restrictions)
    return Specification(
        name or "csp-program",
        elements=elements,
        groups=groups,
        restrictions=restrictions,
        thread_types=list(thread_types),
    )


def csp_process_of_event(event) -> str:
    """Process identity for the projection edge filter.

    CSP events live at ``P``, ``P.in``, ``P.out``, or ``P.var.x``; data
    events carry ``by``.
    """
    try:
        return event.param("by")
    except KeyError:
        pass
    element = event.element
    for suffix in (".in", ".out"):
        if element.endswith(suffix):
            return element[: -len(suffix)]
    if ".var." in element:
        return element.split(".var.")[0]
    return element
