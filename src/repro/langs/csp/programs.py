"""The paper's problems solved in CSP (Section 11).

* :func:`one_slot_buffer_csp_system` -- Hoare's one-slot buffer::

      X :: *[ full=0; producer?x → full:=1
            | full=1; consumer!x → full:=0 ]

* :func:`bounded_buffer_csp_system` -- the circular-buffer bounded buffer
  (Hoare's CSP paper, §4.2 "bounded buffer"), generalised to several
  consumers;

* :func:`rw_csp_system` -- a Readers/Writers server with readers'
  priority: clients send ``"rr"/"er"`` (readers) or ``"rw"/"ew"``
  (writers) and wait for ``"go"``; the server tracks pending queues and
  grants reads while any are pending, writes only when no read is
  pending and the database is idle.  A ``writers_first`` mutant drops
  the no-pending-read condition from the write-grant guard -- a
  negative control that must fail readers' priority.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..exprs import BinOp, Expr, ExprEnv, Fn, Lit, UnOp, VarRef
from .ast import (
    Alt,
    Branch,
    CspIf,
    CspProcess,
    CspSystem,
    DataRead,
    DataWrite,
    LocalAssign,
    Note,
    Receive,
    Rep,
    Send,
)

# -- One-Slot Buffer -------------------------------------------------------------


def one_slot_buffer_csp_system(
    items: Sequence[Any] = (1, 2, 3),
    producer: str = "producer",
    consumer: str = "consumer",
    buffer: str = "buffer",
) -> CspSystem:
    """Producer → one-slot buffer process → consumer."""
    buf = CspProcess(
        name=buffer,
        variables=(("x", None), ("full", 0)),
        body=(
            Rep((
                Branch(
                    guard=BinOp("==", VarRef("full"), Lit(0)),
                    io=Receive(Lit(producer), "x", label="store"),
                    body=(LocalAssign("full", Lit(1), label="fill"),),
                ),
                Branch(
                    guard=BinOp("==", VarRef("full"), Lit(1)),
                    io=Send(Lit(consumer), VarRef("x"), label="give"),
                    body=(LocalAssign("full", Lit(0), label="drain"),),
                ),
            )),
        ),
    )
    producer_body: List = []
    for item in items:
        producer_body += [
            Note.make("Deposit", item=Lit(item)),
            Send(Lit(buffer), Lit(item), label="dep"),
            Note.make("DepositDone", item=Lit(item)),
        ]
    consumer_body: List = []
    for _ in items:
        consumer_body += [
            Note.make("Remove"),
            Receive(Lit(buffer), "got", label="rem"),
            Note.make("RemoveDone", item=VarRef("got")),
        ]
    return CspSystem((
        CspProcess(producer, (), tuple(producer_body)),
        CspProcess(consumer, (("got", None),), tuple(consumer_body)),
        buf,
    ))


# -- Bounded Buffer --------------------------------------------------------------


def bounded_buffer_csp_system(
    capacity: int = 2,
    items: Sequence[Any] = (1, 2, 3),
    n_consumers: int = 1,
    producer: str = "producer",
    buffer: str = "buffer",
) -> CspSystem:
    """Hoare's circular bounded buffer as a CSP process."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    consumers = [f"consumer{i + 1}" for i in range(n_consumers)]
    variables: List[Tuple[str, Any]] = [
        ("count", 0), ("inp", 0), ("outp", 0),
    ]
    variables += [(f"buf[{i}]", None) for i in range(capacity)]
    n = Lit(capacity)
    branches: List[Branch] = [
        Branch(
            guard=BinOp("<", VarRef("count"), n),
            io=Receive(Lit(producer), "incoming", label="recv"),
            body=(
                LocalAssign("buf", VarRef("incoming"), label="store",
                            index=VarRef("inp")),
                LocalAssign("inp", BinOp("%", BinOp("+", VarRef("inp"),
                                                    Lit(1)), n)),
                LocalAssign("count", BinOp("+", VarRef("count"), Lit(1)),
                            label="fill"),
            ),
        ),
    ]
    for c in consumers:
        branches.append(Branch(
            guard=BinOp(">", VarRef("count"), Lit(0)),
            io=Send(Lit(c), VarRef("buf", VarRef("outp")), label="give"),
            body=(
                LocalAssign("outp", BinOp("%", BinOp("+", VarRef("outp"),
                                                     Lit(1)), n)),
                LocalAssign("count", BinOp("-", VarRef("count"), Lit(1)),
                            label="drain"),
            ),
        ))
    variables.append(("incoming", None))
    buf = CspProcess(buffer, tuple(variables), (Rep(tuple(branches)),))

    producer_body: List = []
    for item in items:
        producer_body += [
            Note.make("Deposit", item=Lit(item)),
            Send(Lit(buffer), Lit(item), label="dep"),
            Note.make("DepositDone", item=Lit(item)),
        ]
    per = len(items) // n_consumers
    extra = len(items) % n_consumers
    procs = [CspProcess(producer, (), tuple(producer_body)), buf]
    for i, c in enumerate(consumers):
        take = per + (1 if i < extra else 0)
        body: List = []
        for _ in range(take):
            body += [
                Note.make("Remove"),
                Receive(Lit(buffer), "got", label="rem"),
                Note.make("RemoveDone", item=VarRef("got")),
            ]
        procs.append(CspProcess(c, (("got", None),), tuple(body)))
    return CspSystem(tuple(procs))


# -- Readers/Writers -------------------------------------------------------------


def _head(var: str) -> Fn:
    return Fn(f"head({var})", lambda env: env.variables[var][0], (var,))


def _tail_assign(var: str) -> LocalAssign:
    return LocalAssign(var, Fn(f"tail({var})",
                               lambda env: env.variables[var][1:], (var,)))


def _append_assign(var: str, item: Any) -> LocalAssign:
    return LocalAssign(var, Fn(
        f"{var}+[{item}]",
        lambda env, _item=item: env.variables[var] + (_item,), (var,)))


def rw_server_process(
    readers: Sequence[str],
    writers: Sequence[str],
    name: str = "server",
    writers_first: bool = False,
) -> CspProcess:
    """The Readers/Writers grant server.

    State: ``pending_r``/``pending_w`` (tuples of client names, arrival
    order), ``active_r`` (readers holding the database), ``writing``
    (0/1).  Readers' priority lives in the write-grant guard: a write is
    granted only when nothing is being read or written *and no read is
    pending*.  ``writers_first`` drops that last conjunct and prefers
    the write queue -- the mutant.
    """
    clients = list(readers) + list(writers)
    msg_of = {c: ("rr", "er") for c in readers}
    msg_of.update({c: ("rw", "ew") for c in writers})

    branches: List[Branch] = []
    for c in clients:
        req_msg, end_msg = msg_of[c]
        is_reader = c in set(readers)
        if is_reader:
            handle = CspIf(
                BinOp("==", VarRef("msg"), Lit(req_msg)),
                ( _append_assign("pending_r", c), ),
                ( LocalAssign("active_r",
                              BinOp("-", VarRef("active_r"), Lit(1)),
                              label="reader-left"), ),
            )
        else:
            handle = CspIf(
                BinOp("==", VarRef("msg"), Lit(req_msg)),
                ( _append_assign("pending_w", c), ),
                ( LocalAssign("writing", Lit(0), label="writer-left"), ),
            )
        branches.append(Branch(io=Receive(Lit(c), "msg"), body=(handle,)))

    can_read = Fn(
        "can-grant-read",
        lambda env: bool(env.variables["pending_r"])
        and env.variables["writing"] == 0,
        ("pending_r", "writing"),
    )
    if writers_first:
        can_write = Fn(
            "can-grant-write",
            lambda env: bool(env.variables["pending_w"])
            and env.variables["writing"] == 0
            and env.variables["active_r"] == 0,
            ("pending_w", "writing", "active_r"),
        )
        # prefer writers: reads are granted only when no write is pending
        can_read = Fn(
            "can-grant-read",
            lambda env: bool(env.variables["pending_r"])
            and env.variables["writing"] == 0
            and not env.variables["pending_w"],
            ("pending_r", "writing", "pending_w"),
        )
    else:
        can_write = Fn(
            "can-grant-write",
            lambda env: bool(env.variables["pending_w"])
            and env.variables["writing"] == 0
            and env.variables["active_r"] == 0
            and not env.variables["pending_r"],  # readers' priority
            ("pending_w", "writing", "active_r", "pending_r"),
        )

    branches.append(Branch(
        guard=can_read,
        io=Send(_head("pending_r"), Lit("go"), label="grant-read"),
        body=(
            _tail_assign("pending_r"),
            LocalAssign("active_r", BinOp("+", VarRef("active_r"), Lit(1)),
                        label="reader-in"),
        ),
    ))
    branches.append(Branch(
        guard=can_write,
        io=Send(_head("pending_w"), Lit("go"), label="grant-write"),
        body=(
            _tail_assign("pending_w"),
            LocalAssign("writing", Lit(1), label="writer-in"),
        ),
    ))

    return CspProcess(
        name,
        variables=(
            ("pending_r", ()), ("pending_w", ()),
            ("active_r", 0), ("writing", 0), ("msg", None),
        ),
        body=(Rep(tuple(branches)),),
    )


def csp_reader_body(server: str, loc: int) -> Tuple:
    return (
        Note.make("Read", loc=Lit(loc)),
        Send(Lit(server), Lit("rr"), label="req-read"),
        Receive(Lit(server), "grant", label="got-go"),
        DataRead(f"db.data[{loc}]", "info"),
        Send(Lit(server), Lit("er"), label="end-read"),
        Note.make("FinishRead", info=VarRef("info")),
    )


def csp_writer_body(server: str, loc: int, info: Any) -> Tuple:
    return (
        Note.make("Write", loc=Lit(loc), info=Lit(info)),
        Send(Lit(server), Lit("rw"), label="req-write"),
        Receive(Lit(server), "grant", label="got-go"),
        DataWrite(f"db.data[{loc}]", Lit(info)),
        Send(Lit(server), Lit("ew"), label="end-write"),
        Note.make("FinishWrite"),
    )


def rw_csp_system(
    n_readers: int = 1,
    n_writers: int = 2,
    n_locs: int = 1,
    writers_first: bool = False,
    transactions_per_client: int = 1,
    server: str = "server",
) -> CspSystem:
    """A complete CSP Readers/Writers system."""
    readers = [f"reader{i + 1}" for i in range(n_readers)]
    writers = [f"writer{j + 1}" for j in range(n_writers)]
    procs: List[CspProcess] = []
    for i, r in enumerate(readers):
        loc = 1 + (i % n_locs)
        body = csp_reader_body(server, loc) * transactions_per_client
        procs.append(CspProcess(r, (("grant", None), ("info", None)), body))
    for j, w in enumerate(writers):
        loc = 1 + (j % n_locs)
        body = csp_writer_body(server, loc, 100 + j) * transactions_per_client
        procs.append(CspProcess(w, (("grant", None),), body))
    procs.append(rw_server_process(readers, writers, server, writers_first))
    return CspSystem(
        tuple(procs),
        data_elements=tuple(
            (f"db.data[{loc}]", 0) for loc in range(1, n_locs + 1)
        ),
    )
