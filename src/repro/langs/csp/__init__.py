"""Communicating Sequential Processes: AST, rendezvous interpreter
emitting GEM computations, the GEM description of CSP I/O, and the
paper's CSP programs."""

from .ast import (
    Alt,
    Branch,
    CspIf,
    CspProcess,
    CspStmt,
    CspSystem,
    DataRead,
    DataWrite,
    LocalAssign,
    Note,
    Receive,
    Rep,
    Send,
)
from .gemspec import (
    channel_balance_restriction,
    csp_process_of_event,
    csp_program_spec,
    message_value_restriction,
    simultaneity_restriction,
)
from .interp import CspProgram, CspState
from .programs import (
    bounded_buffer_csp_system,
    csp_reader_body,
    csp_writer_body,
    one_slot_buffer_csp_system,
    rw_csp_system,
    rw_server_process,
)

__all__ = [
    "CspStmt", "LocalAssign", "Send", "Receive", "Note", "DataRead",
    "DataWrite", "CspIf", "Branch", "Alt", "Rep", "CspProcess", "CspSystem",
    "CspProgram", "CspState",
    "csp_program_spec", "simultaneity_restriction",
    "message_value_restriction", "channel_balance_restriction",
    "csp_process_of_event",
    "one_slot_buffer_csp_system", "bounded_buffer_csp_system",
    "rw_csp_system", "rw_server_process", "csp_reader_body",
    "csp_writer_body",
]
