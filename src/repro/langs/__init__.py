"""Language primitives described by GEM in the paper: the Monitor,
Communicating Sequential Processes (CSP), and ADA tasking."""

from . import ada, csp, exprs, monitor

__all__ = ["monitor", "csp", "ada", "exprs"]
