"""Significant objects: the correspondence between PROG and P (Section 9).

The paper's proof method, step 1: "For each group, element, event type,
event parameter, and thread in P, choose a corresponding object in PROG.
We call these the significant objects of PROG."

A :class:`Correspondence` is a list of :class:`SignificantEvents` rules.
Each rule selects a set of program events (by element, event class, and
an optional parameter predicate -- e.g. "Assign events at
``rw.var.readernum`` whose ``site`` is ``StartRead:inc``") and maps each
selected event to a problem-level event (element, class, parameter
transform).

The Section 9 correspondence table for the ReadersWriters monitor::

    PROBLEM      PROGRAM
    ReqRead      EntryStartRead:BEGIN
    StartRead    EntryStartRead: readernum := readernum + 1
    EndRead      EntryEndRead:   readernum := readernum - 1
    ReqWrite     EntryStartWrite:BEGIN
    StartWrite   EntryStartWrite:readernum := -1
    EndWrite     EntryEndWrite:  readernum := 0

is built by :func:`repro.problems.readers_writers.monitor_correspondence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import VerificationError
from ..core.event import Event


@dataclass(frozen=True)
class SignificantEvents:
    """One correspondence rule.

    ``element`` / ``event_class`` select program events (element may end
    with ``*`` as a prefix wildcard); ``where`` optionally narrows by
    parameters.  Selected events map to problem events at
    ``target_element`` (a string, or a callable receiving the event for
    indexed targets like ``db.data[loc]``) with class ``target_class``
    and parameters ``params(event)``.
    """

    name: str
    element: str
    event_class: str
    target_element: Any  # str | Callable[[Event], str]
    target_class: str
    where: Optional[Callable[[Event], bool]] = None
    params: Optional[Callable[[Event], Mapping[str, Any]]] = None

    def matches(self, event: Event) -> bool:
        if event.event_class != self.event_class:
            return False
        if self.element.endswith("*"):
            if not event.element.startswith(self.element[:-1]):
                return False
        elif event.element != self.element:
            return False
        if self.where is not None and not self.where(event):
            return False
        return True

    def target_element_for(self, event: Event) -> str:
        if callable(self.target_element):
            return self.target_element(event)
        return self.target_element

    def params_for(self, event: Event) -> Dict[str, Any]:
        if self.params is None:
            return {}
        return dict(self.params(event))


@dataclass(frozen=True)
class Correspondence:
    """A full significant-object mapping for one verification.

    ``process_of`` extracts a process identity from a program event
    (used by the default edge filter: projected enable edges are kept
    only between events of the same process -- the problem-level control
    chains of one transaction are carried by one process).  Return None
    for events with no process identity; edges touching such events are
    kept unconditionally.

    ``edge_filter`` fully overrides the same-process rule when given.
    """

    rules: Tuple[SignificantEvents, ...]
    process_of: Optional[Callable[[Event], Optional[str]]] = None
    edge_filter: Optional[Callable[[Event, Event], bool]] = None

    def __post_init__(self) -> None:
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise VerificationError("duplicate correspondence rule names")

    def rule_for(self, event: Event) -> Optional[SignificantEvents]:
        """The first rule matching ``event``, or None (insignificant)."""
        for rule in self.rules:
            if rule.matches(event):
                return rule
        return None

    def keeps_edge(self, src: Event, dst: Event) -> bool:
        """Should a projected (path-induced) enable edge src→dst be kept?"""
        if self.edge_filter is not None:
            return self.edge_filter(src, dst)
        if self.process_of is None:
            return True
        sp = self.process_of(src)
        dp = self.process_of(dst)
        if sp is None or dp is None:
            return True
        return sp == dp


def by_param(name: str, value: Any) -> Callable[[Event], bool]:
    """Convenience ``where`` predicate: parameter ``name`` equals ``value``."""

    def check(event: Event) -> bool:
        try:
            return event.param(name) == value
        except KeyError:
            return False

    return check


def process_from_param(name: str = "by") -> Callable[[Event], Optional[str]]:
    """Extract process identity from an event parameter (default ``by``)."""

    def extract(event: Event) -> Optional[str]:
        try:
            return event.param(name)
        except KeyError:
            return None

    return extract


def process_from_param_or_element(
    name: str = "by",
) -> Callable[[Event], Optional[str]]:
    """Process identity from a parameter, falling back to the element name.

    Monitor-language computations carry ``by`` on lock/variable/condition
    events; events at a caller's own element (Call, Return, notes) carry
    no ``by`` -- there the element *is* the process.
    """

    param_extract = process_from_param(name)

    def extract(event: Event) -> Optional[str]:
        return param_extract(event) or event.element

    return extract
