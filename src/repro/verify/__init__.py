"""The GEM verification method (Section 9): significant objects,
projection, and ``PROG sat R`` checking -- plus consistency models
(linearizability, sequential consistency) decided over projected
object histories."""

from .consistency import (
    ObjectHistory,
    Operation,
    brute_force_linearizable,
    brute_force_sequentially_consistent,
    history_of,
    linearizable,
    sequentially_consistent,
)
from .correspondence import (
    Correspondence,
    SignificantEvents,
    by_param,
    process_from_param,
    process_from_param_or_element,
)
from .projection import project
from .sat import (
    RestrictionVerdict,
    VerificationReport,
    check_projection,
    verify_program,
)

__all__ = [
    "Correspondence", "SignificantEvents", "by_param",
    "process_from_param", "process_from_param_or_element",
    "project", "verify_program", "check_projection",
    "VerificationReport", "RestrictionVerdict",
    "ObjectHistory", "Operation", "history_of",
    "linearizable", "sequentially_consistent",
    "brute_force_linearizable", "brute_force_sequentially_consistent",
]
