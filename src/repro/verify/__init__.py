"""The GEM verification method (Section 9): significant objects,
projection, and ``PROG sat R`` checking."""

from .correspondence import (
    Correspondence,
    SignificantEvents,
    by_param,
    process_from_param,
    process_from_param_or_element,
)
from .projection import project
from .sat import (
    RestrictionVerdict,
    VerificationReport,
    check_projection,
    verify_program,
)

__all__ = [
    "Correspondence", "SignificantEvents", "by_param",
    "process_from_param", "process_from_param_or_element",
    "project", "verify_program", "check_projection",
    "VerificationReport", "RestrictionVerdict",
]
