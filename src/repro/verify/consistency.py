"""Consistency of concurrent-object histories as projection properties.

A concurrent object (register, FIFO queue, mutex lock, counter --
:mod:`repro.problems.objects`) is observed through *invocation* and
*response* events.  In GEM terms the object is one element whose
``Inv``/``Res`` events are sequenced by the element order, so a
projected computation carries everything a consistency model needs:

* **program order** -- each process's operations appear in its
  submission order (the per-process subsequence of the element order);
* **real-time order** ``a ⊏ b`` -- operation ``a``'s response
  temporally precedes (``⇒``, here: element-precedes) operation ``b``'s
  invocation.

A history is **sequentially consistent** iff some *legal* sequential
ordering of its operations (one in which every operation's return
value is what the object's sequential semantics dictates) extends
program order; it is **linearizable** iff some legal ordering extends
program order *and* real-time order.  Both are projection properties:
pure functions of the projected partial order, so they are stable
across interleavings that the engine dedupes to one computation and
safe to use as GEM restrictions.

Two independent deciders live here, on purpose (this module's archetype
is *test*):

* :func:`linearizable` / :func:`sequentially_consistent` -- the
  production checker: a memoised depth-first search over
  ``(completed-operation set, object state)`` pairs, in the style of
  Wing & Gong / Lowe.  Exponential in operations, not factorial.
* :func:`brute_force_linearizable` /
  :func:`brute_force_sequentially_consistent` -- the reference oracle:
  memoised permutation search over the matched call/response pairs.
  Factorial; only usable on small histories, used only to gate the
  production checker (the ``objects-differential`` fuzz oracle and
  ``tests/test_objects.py``).

See ``docs/OBJECTS.md`` for the model and the oracle design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from itertools import permutations
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Return value of a successful mutating operation with no data answer.
OK = "ok"
#: Return value of a dequeue that found the queue empty.
EMPTY = "empty"

#: The object types with built-in sequential semantics.
OBJECT_TYPES: Tuple[str, ...] = ("register", "queue", "lock", "counter")

#: Sentinel returned by :func:`sequential_apply` when the operation is
#: illegal at that state with that return value.  A distinct object --
#: never ``None`` -- because legal states can themselves be ``None``
#: (a register before its first write).
ILLEGAL = object()


@dataclass(frozen=True)
class Operation:
    """One matched invocation/response pair.

    ``process`` is the invoking process, ``kind`` the operation name in
    the object's vocabulary (``read``/``write``, ``enq``/``deq``,
    ``acq``/``rel``, ``inc``/``get``), ``arg`` the invocation argument
    (``None`` for argument-less operations) and ``ret`` the response
    value.
    """

    process: str
    kind: str
    arg: Any = None
    ret: Any = None


@dataclass(frozen=True)
class ObjectHistory:
    """A complete concurrent-object history.

    ``ops`` lists matched operations in invocation order; operations of
    the same process are therefore in program order.  ``precedes`` is
    the real-time order as index pairs: ``(i, j)`` means operation
    ``i``'s response happened before operation ``j``'s invocation.
    """

    object_type: str
    ops: Tuple[Operation, ...]
    precedes: FrozenSet[Tuple[int, int]]

    def program_order(self) -> FrozenSet[Tuple[int, int]]:
        """Per-process order pairs (``ops`` is invocation-ordered)."""
        pairs = set()
        for i, a in enumerate(self.ops):
            for j in range(i + 1, len(self.ops)):
                if self.ops[j].process == a.process:
                    pairs.add((i, j))
        return frozenset(pairs)


# ---------------------------------------------------------------------------
# Sequential semantics
# ---------------------------------------------------------------------------
#
# One model per object type: an initial state plus a transition
# ``apply(state, op) -> new state | ILLEGAL``.  States are hashable so
# both deciders can memoise on them.


def _apply_register(state, op: Operation):
    if op.kind == "write":
        return op.arg if op.ret == OK else ILLEGAL
    if op.kind == "read":
        return state if op.ret == state else ILLEGAL
    return ILLEGAL


def _apply_queue(state: Tuple, op: Operation):
    if op.kind == "enq":
        return state + (op.arg,) if op.ret == OK else ILLEGAL
    if op.kind == "deq":
        if not state:
            return state if op.ret == EMPTY else ILLEGAL
        return state[1:] if op.ret == state[0] else ILLEGAL
    return ILLEGAL


#: Lock model state when no process holds the lock.
FREE = "free"


def _apply_lock(state, op: Operation):
    if op.kind == "acq":
        return op.process if state == FREE and op.ret == OK else ILLEGAL
    if op.kind == "rel":
        return FREE if state == op.process and op.ret == OK else ILLEGAL
    return ILLEGAL


def _apply_counter(state: int, op: Operation):
    if op.kind == "inc":
        return state + 1 if op.ret == state + 1 else ILLEGAL
    if op.kind == "get":
        return state if op.ret == state else ILLEGAL
    return ILLEGAL


_MODELS: Dict[str, Tuple[Any, Callable]] = {
    "register": (None, _apply_register),
    "queue": ((), _apply_queue),
    "lock": (FREE, _apply_lock),
    "counter": (0, _apply_counter),
}


#: Monotone work counters, deterministic for a fixed history:
#: ``search_nodes`` counts states expanded by the memoised witness
#: search, ``brute_perms`` counts permutations examined by the
#: brute-force oracle (each costs a position map plus an order scan,
#: whether or not it survives to replay).  ``repro bench`` gates the
#: search-vs-oracle ratio on these instead of microsecond wall times,
#: so the gate is machine-independent and cannot flake on timer noise.
_work = {"search_nodes": 0, "brute_perms": 0}


def decider_work() -> Dict[str, int]:
    """Snapshot of the monotone decider work counters (see bench)."""
    return dict(_work)


def sequential_apply(object_type: str, state, op: Operation):
    """One step of the object's sequential semantics, or :data:`ILLEGAL`."""
    _init, fn = _MODELS[object_type]
    return fn(state, op)


def initial_state(object_type: str):
    if object_type not in _MODELS:
        raise ValueError(f"unknown object type {object_type!r}; "
                         f"known: {OBJECT_TYPES}")
    return _MODELS[object_type][0]


# ---------------------------------------------------------------------------
# The production checker: memoised set-based DFS
# ---------------------------------------------------------------------------


def _witness_search(history: ObjectHistory,
                    order: FrozenSet[Tuple[int, int]]) -> bool:
    """Is there a legal sequential witness extending ``order``?

    Depth-first search over ``(frozenset of completed operations,
    object state)``: at each node, any operation whose required
    predecessors are all completed may be tried next; the sequential
    model rejects illegal return values immediately.  Failed nodes are
    memoised, so the search is bounded by distinct (subset, state)
    pairs -- exponential in the number of operations, never factorial.
    """
    n = len(history.ops)
    preds: List[FrozenSet[int]] = [frozenset() for _ in range(n)]
    by_target: Dict[int, set] = {j: set() for j in range(n)}
    for i, j in order:
        by_target[j].add(i)
    for j in range(n):
        preds[j] = frozenset(by_target[j])
    failed: set = set()

    def search(done: FrozenSet[int], state) -> bool:
        _work["search_nodes"] += 1
        if len(done) == n:
            return True
        key = (done, state)
        if key in failed:
            return False
        for i in range(n):
            if i in done or not preds[i] <= done:
                continue
            nxt = sequential_apply(history.object_type, state,
                                   history.ops[i])
            if nxt is ILLEGAL:
                continue
            if search(done | {i}, nxt):
                return True
        failed.add(key)
        return False

    return search(frozenset(), initial_state(history.object_type))


def linearizable(history: ObjectHistory) -> bool:
    """Legal witness extending program order *and* real-time order?"""
    return _witness_search(
        history, history.precedes | history.program_order())


def sequentially_consistent(history: ObjectHistory) -> bool:
    """Legal witness extending program order (real time ignored)?"""
    return _witness_search(history, history.program_order())


# ---------------------------------------------------------------------------
# The reference oracle: memoised permutation search
# ---------------------------------------------------------------------------

#: Hard cap on brute-force history size -- 9! ≈ 363k permutations is
#: the largest a test or bench should ever replay.
BRUTE_FORCE_MAX_OPS = 9


def _brute_force(history: ObjectHistory,
                 order: FrozenSet[Tuple[int, int]]) -> bool:
    """Enumerate every permutation of the matched pairs.

    A permutation is a witness iff it extends ``order`` and replays
    legally through the sequential model.  Replays of shared prefixes
    are memoised (keyed by the prefix tuple), which is the only
    cleverness allowed here: this is the slow, obviously-correct
    implementation the fast one is gated against.
    """
    n = len(history.ops)
    if n > BRUTE_FORCE_MAX_OPS:
        raise ValueError(
            f"brute-force search capped at {BRUTE_FORCE_MAX_OPS} "
            f"operations (got {n}); use linearizable()/"
            f"sequentially_consistent() instead")
    prefix_cache: Dict[Tuple[int, ...], Any] = {}
    init = initial_state(history.object_type)

    def replay(prefix: Tuple[int, ...]):
        """State after replaying ``prefix``, or :data:`ILLEGAL`."""
        if not prefix:
            return init
        if prefix in prefix_cache:
            return prefix_cache[prefix]
        state = replay(prefix[:-1])
        out = ILLEGAL if state is ILLEGAL else sequential_apply(
            history.object_type, state, history.ops[prefix[-1]])
        prefix_cache[prefix] = out
        return out

    for perm in permutations(range(n)):
        _work["brute_perms"] += 1
        pos = {op: k for k, op in enumerate(perm)}
        if any(pos[i] > pos[j] for i, j in order):
            continue
        if replay(perm) is not ILLEGAL:
            return True
    return False


def brute_force_linearizable(history: ObjectHistory) -> bool:
    return _brute_force(
        history, history.precedes | history.program_order())


def brute_force_sequentially_consistent(history: ObjectHistory) -> bool:
    return _brute_force(history, history.program_order())


# ---------------------------------------------------------------------------
# Extraction from GEM computations
# ---------------------------------------------------------------------------


def history_of(comp, object_type: str, object_element: str = "obj",
               occurred=None) -> ObjectHistory:
    """The object history carried by a (projected) computation.

    Walks the ``Inv``/``Res`` events at ``object_element`` in element
    order -- the GEM real-time order -- matching each invocation with
    its process's next response.  ``occurred`` optionally filters to a
    history prefix (an ``eid -> bool`` predicate, e.g.
    ``history.occurred``); responses whose invocation was filtered out
    are ignored, and unmatched (pending) invocations are dropped:
    consistency here is defined over *complete* histories, which is
    what the object programs produce at every final computation.
    """
    events = [ev for ev in comp.events_at(object_element)
              if occurred is None or occurred(ev.eid)]
    ops: List[Operation] = []
    spans: List[Tuple[int, int]] = []  # (inv position, res position)
    pending: Dict[str, Tuple[int, int]] = {}  # process -> (op index, inv pos)
    for pos, ev in enumerate(events):
        by = ev.param("by")
        if ev.event_class == "Inv":
            pending[by] = (len(ops), pos)
            ops.append(Operation(process=by, kind=ev.param("op"),
                                 arg=ev.param("arg")))
            spans.append((pos, -1))
        elif ev.event_class == "Res" and by in pending:
            idx, inv_pos = pending.pop(by)
            ops[idx] = replace(ops[idx], ret=ev.param("val"))
            spans[idx] = (inv_pos, pos)
    keep = [i for i, (_, res) in enumerate(spans) if res >= 0]
    renum = {old: new for new, old in enumerate(keep)}
    precedes = frozenset(
        (renum[i], renum[j])
        for i in keep for j in keep
        if i != j and spans[i][1] < spans[j][0]
    )
    return ObjectHistory(
        object_type=object_type,
        ops=tuple(ops[i] for i in keep),
        precedes=precedes,
    )


# ---------------------------------------------------------------------------
# Seeded random histories (fuzzing / differential sweeps)
# ---------------------------------------------------------------------------


def _random_script(rng: random.Random, object_type: str,
                   ops_per_proc: int) -> List[Tuple[str, Any]]:
    script: List[Tuple[str, Any]] = []
    if object_type == "lock":
        # acquire/release must alternate or the simulation deadlocks
        for k in range(ops_per_proc):
            script.append(("acq", None) if k % 2 == 0 else ("rel", None))
        if len(script) % 2 == 1:
            script.append(("rel", None))
        return script
    for _ in range(ops_per_proc):
        if object_type == "register":
            if rng.random() < 0.5:
                script.append(("write", rng.randrange(1, 4)))
            else:
                script.append(("read", None))
        elif object_type == "queue":
            if rng.random() < 0.6:
                script.append(("enq", rng.randrange(1, 4)))
            else:
                script.append(("deq", None))
        else:  # counter
            script.append(("inc", None) if rng.random() < 0.5
                          else ("get", None))
    return script


def random_object_history(rng: random.Random, object_type: str,
                          n_procs: int = 2, ops_per_proc: int = 2,
                          corrupt: bool = False) -> ObjectHistory:
    """A seeded random complete history of one shared object.

    Random per-process scripts are run through the object's *correct*
    concurrent semantics (operations take effect at the response) under
    a random interleaving, so the raw history is linearizable by
    construction.  With ``corrupt``, a few response values are then
    rewritten at random -- stale values, phantom elements, wrong counts
    -- which is what gives the differential sweeps non-linearizable
    and non-SC histories to disagree about.
    """
    procs = [f"p{i + 1}" for i in range(n_procs)]
    scripts = {p: _random_script(rng, object_type, ops_per_proc)
               for p in procs}
    pc = {p: 0 for p in procs}
    pending: Dict[str, Tuple[str, Any]] = {}
    # concrete object state (correct semantics)
    value: Any = None
    items: List[Any] = []
    holders: set = set()
    count = 0

    ops: List[Operation] = []
    spans: List[Tuple[int, int]] = []
    open_idx: Dict[str, int] = {}
    clock = 0

    def steppable(p: str) -> bool:
        if p in pending:
            kind = pending[p][0]
            return kind != "acq" or not holders
        return pc[p] < len(scripts[p])

    while True:
        ready = [p for p in procs if steppable(p)]
        if not ready:
            break
        p = rng.choice(ready)
        if p not in pending:  # invoke
            kind, arg = scripts[p][pc[p]]
            pc[p] += 1
            pending[p] = (kind, arg)
            open_idx[p] = len(ops)
            ops.append(Operation(process=p, kind=kind, arg=arg))
            spans.append((clock, -1))
        else:  # respond: the operation takes effect now
            kind, arg = pending.pop(p)
            if kind == "write":
                value, ret = arg, OK
            elif kind == "read":
                ret = value
            elif kind == "enq":
                items.append(arg)
                ret = OK
            elif kind == "deq":
                ret = items.pop(0) if items else EMPTY
            elif kind == "acq":
                holders.add(p)
                ret = OK
            elif kind == "rel":
                holders.discard(p)
                ret = OK
            elif kind == "inc":
                count += 1
                ret = count
            else:  # get
                ret = count
            idx = open_idx.pop(p)
            ops[idx] = replace(ops[idx], ret=ret)
            spans[idx] = (spans[idx][0], clock)
        clock += 1

    if corrupt and ops:
        for _ in range(rng.randrange(1, 3)):
            idx = rng.randrange(len(ops))
            op = ops[idx]
            pool: List[Any] = [OK, EMPTY, None, 0, 1, 2, 3,
                               op.ret, "p1", "p2"]
            ops[idx] = replace(op, ret=rng.choice(pool))

    precedes = frozenset(
        (i, j) for i in range(len(ops)) for j in range(len(ops))
        if i != j and spans[i][1] >= 0 and spans[i][1] < spans[j][0]
    )
    return ObjectHistory(object_type=object_type, ops=tuple(ops),
                         precedes=precedes)


def relabel_processes(history: ObjectHistory,
                      mapping: Dict[str, str]) -> ObjectHistory:
    """The same history with process ids renamed (verdict-invariant)."""
    return replace(history, ops=tuple(
        replace(op, process=mapping.get(op.process, op.process))
        for op in history.ops))


def permute_ops(history: ObjectHistory,
                perm: Sequence[int]) -> ObjectHistory:
    """The same history with operations re-enumerated by ``perm``.

    ``perm[k]`` is the old index of the operation now at position
    ``k``.  Because ``ops`` index order *is* each process's program
    order (there is no separate timestamp), the re-enumeration must
    keep every process's operations in their original relative order
    -- any interleaving of the per-process sequences is fine, anything
    else silently describes a different history, so it is rejected.
    Verdicts are order-structure properties, so every admissible
    re-enumeration must leave them unchanged -- the Hypothesis
    property tests assert exactly that.
    """
    old_of_new = list(perm)
    last_seen: Dict[str, int] = {}
    for old in old_of_new:
        p = history.ops[old].process
        if last_seen.get(p, -1) > old:
            raise ValueError(
                f"permutation reorders process {p!r}'s operations; "
                f"only program-order-preserving re-enumerations are "
                f"meaningful")
        last_seen[p] = old
    new_of_old = {old: new for new, old in enumerate(old_of_new)}
    return ObjectHistory(
        object_type=history.object_type,
        ops=tuple(history.ops[i] for i in old_of_new),
        precedes=frozenset((new_of_old[i], new_of_old[j])
                           for i, j in history.precedes),
    )


def check_history_agreement(
    history: ObjectHistory,
    linearizable_impl: Optional[Callable[[ObjectHistory], bool]] = None,
    sc_impl: Optional[Callable[[ObjectHistory], bool]] = None,
) -> Optional[str]:
    """The consistency-checker laws on one history (None = all hold).

    * the memoised search agrees with the brute-force permutation
      search, for both linearizability and sequential consistency;
    * linearizable ⇒ sequentially consistent.

    ``linearizable_impl`` / ``sc_impl`` are the injectable
    implementations under test (defaults: the production checkers);
    the killed-mutant tests pass deliberately lying ones to prove the
    laws have teeth.
    """
    lin_fn = linearizable_impl or linearizable
    sc_fn = sc_impl or sequentially_consistent
    lin, lin_ref = lin_fn(history), brute_force_linearizable(history)
    if lin != lin_ref:
        return (f"linearizability disagrees on {history.object_type}: "
                f"search says {lin}, brute force says {lin_ref}")
    sc, sc_ref = sc_fn(history), brute_force_sequentially_consistent(history)
    if sc != sc_ref:
        return (f"sequential consistency disagrees on "
                f"{history.object_type}: search says {sc}, "
                f"brute force says {sc_ref}")
    if lin and not sc:
        return (f"{history.object_type}: linearizable history judged "
                f"not sequentially consistent")
    return None


__all__ = [
    "OK", "EMPTY", "FREE", "ILLEGAL", "OBJECT_TYPES",
    "Operation", "ObjectHistory",
    "sequential_apply", "initial_state", "decider_work",
    "linearizable", "sequentially_consistent",
    "brute_force_linearizable", "brute_force_sequentially_consistent",
    "BRUTE_FORCE_MAX_OPS",
    "history_of", "random_object_history",
    "relabel_processes", "permute_ops",
    "check_history_agreement",
]
