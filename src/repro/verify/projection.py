"""Projecting program computations onto significant objects.

The paper's reading of ``PROG sat R``: "If we examine a computation
which is legal with respect to PROG, and only take note of significant
objects, those significant objects exhibit the same behavior as a
computation that is legal with respect to P."  *Only take note of* is
projection:

1. **Events**: keep exactly the events matched by a correspondence rule;
   rename each to its problem-level element/class and transform its
   parameters.
2. **Element order**: projected events landing on one problem element
   are sequenced by the original temporal order.  If two of them are
   potentially concurrent in the program computation, the projection
   must *invent* an order to keep the element sequential; by default we
   linearise deterministically (topological position), because the
   problems verified here only merge commuting events (e.g. concurrent
   reads).  Pass ``strict_element_order=True`` to make invention an
   error instead.
3. **Enable relation**: a projected edge ``a ⊳' b`` exists iff the
   program computation has an enable path from a to b whose intermediate
   events are all insignificant, and the correspondence's edge filter
   keeps the pair (by default: same process -- see
   :class:`~repro.verify.correspondence.Correspondence`).  When the
   correspondence defines ``process_of``, the *path* is restricted too:
   it may only traverse insignificant events of the source's process (or
   events with no process identity).  Without this, a path can tunnel
   through a third process -- e.g. from one deposit's client-side events
   through the whole buffer server to the next deposit's -- and
   fabricate an enable edge between two same-process events that share
   no control flow.

The projected object is an ordinary
:class:`~repro.core.computation.Computation`; checking it against the
problem specification (including its thread labelling) is then exactly
``legal(C', P)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.computation import Computation
from ..core.errors import VerificationError
from ..core.event import Event
from ..core.ids import EventId
from .correspondence import Correspondence


def project(
    computation: Computation,
    correspondence: Correspondence,
    strict_element_order: bool = False,
) -> Computation:
    """Project ``computation`` onto the correspondence's significant objects."""
    # 1. select and map events
    matched: List[Tuple[Event, object]] = []
    for ev in computation.events:
        rule = correspondence.rule_for(ev)
        if rule is not None:
            matched.append((ev, rule))
    if not matched:
        return Computation([], [])

    topo_pos = {
        eid: i
        for i, eid in enumerate(computation.temporal_relation.topological_order())
    }
    matched.sort(key=lambda pair: topo_pos[pair[0].eid])

    # 2. per-target-element sequencing
    by_target: Dict[str, List[Event]] = {}
    mapped_events: List[Event] = []
    id_map: Dict[EventId, EventId] = {}
    for ev, rule in matched:
        target_el = rule.target_element_for(ev)
        seq = by_target.setdefault(target_el, [])
        if strict_element_order and seq:
            prev = seq[-1]
            if computation.concurrent(prev.eid, ev.eid):
                raise VerificationError(
                    f"projection must invent an element order at "
                    f"{target_el!r}: {prev.eid} and {ev.eid} are potentially "
                    "concurrent in the program computation"
                )
        seq.append(ev)
        new = Event.make(
            target_el,
            len(seq),
            rule.target_class,
            rule.params_for(ev),
            threads=ev.threads,
        )
        mapped_events.append(new)
        id_map[ev.eid] = new.eid

    # 3. path-induced enable edges through insignificant events
    significant: Set[EventId] = set(id_map)
    edges: List[Tuple[EventId, EventId]] = []
    for ev, _rule in matched:
        src_process = (correspondence.process_of(ev)
                       if correspondence.process_of is not None else None)
        reachable = _significant_successors(
            computation, ev.eid, significant,
            correspondence.process_of, src_process,
        )
        for dst in reachable:
            dst_ev = computation.event(dst)
            if correspondence.keeps_edge(ev, dst_ev):
                edges.append((id_map[ev.eid], id_map[dst]))

    return Computation(mapped_events, edges)


def _significant_successors(
    computation: Computation,
    source: EventId,
    significant: Set[EventId],
    process_of,
    src_process: Optional[str],
) -> List[EventId]:
    """Significant events reachable from ``source`` by an enable path
    whose intermediate events are all insignificant.

    When a process map is given and the source has a process identity,
    the path may only traverse intermediates of that process (or of no
    process) -- control flow, not tunnelling through other processes.
    """

    def traversable(eid: EventId) -> bool:
        if process_of is None or src_process is None:
            return True
        p = process_of(computation.event(eid))
        return p is None or p == src_process

    out: List[EventId] = []
    seen: Set[EventId] = set()
    frontier: List[EventId] = [
        e.eid for e in computation.enables_of(source)
    ]
    while frontier:
        eid = frontier.pop()
        if eid in seen:
            continue
        seen.add(eid)
        if eid in significant:
            out.append(eid)
            continue  # paths may not pass through significant events
        if not traversable(eid):
            continue
        frontier.extend(e.eid for e in computation.enables_of(eid))
    return out
