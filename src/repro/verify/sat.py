"""``PROG sat R``: bounded exhaustive verification (Section 9, step 2).

"Prove that each restriction Rᵢ in P is satisfied by the corresponding
significant objects in PROG: (∀ Rᵢ ∈ P)[PROG sat Rᵢ]."

:func:`verify_program` mechanises this: explore the program's legal
computations (exhaustively up to bounds, or by seeded sampling), project
each onto the significant objects, and check every P-restriction on
every projection.  Optionally the *program* specification is checked on
the raw computations too -- catching instrumentation bugs where the
interpreter's output is not even a legal PROG computation.

Deadlock: runs where some process is blocked forever are counted and,
by default, fail verification ("lack of deadlock" is one of the
properties the paper proves of its applications).  Pass
``allow_deadlock=True`` when deadlock is the expected outcome being
demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.checker import CheckResult
from ..core.computation import Computation
from ..core.errors import VerificationError
from ..core.specification import Specification
from ..sim.runtime import Program, Run
from ..sim.scheduler import ExplorationResult
from .correspondence import Correspondence
from .projection import project


@dataclass
class RestrictionVerdict:
    """Aggregate verdict for one problem restriction across all runs."""

    name: str
    holds: bool = True
    failing_runs: List[int] = field(default_factory=list)

    def __str__(self) -> str:
        if self.holds:
            return f"[OK ] {self.name}"
        shown = ", ".join(map(str, self.failing_runs[:5]))
        more = "..." if len(self.failing_runs) > 5 else ""
        return f"[FAIL] {self.name} (runs {shown}{more})"


@dataclass
class VerificationReport:
    """Everything :func:`verify_program` learned.

    ``distinct_computations`` counts the partial orders actually
    checked; ``dedupe_ratio`` is runs per distinct computation.  A
    report saying "verified over all N executions (M distinct
    computations)" is honest about the quotient the engine exploited.
    ``engine_stats`` carries the :class:`repro.engine.EngineStats` of
    the run that produced this report (observability only: it does not
    participate in :meth:`signature` or :meth:`summary`).
    ``failing_run_choices`` maps a few failing run indices (the first
    per restriction / legality / program-spec verdict) to their
    scheduler choice sequences, so a witness can be replayed with
    ``replay_prefix(program, choices)`` instead of re-exploring every
    run; provenance only, also excluded from :meth:`signature`.
    """

    problem_name: str
    exhaustive: bool
    runs_checked: int = 0
    deadlocks: int = 0
    truncated: int = 0
    verdicts: Dict[str, RestrictionVerdict] = field(default_factory=dict)
    program_spec_failures: List[int] = field(default_factory=list)
    legality_failures: List[int] = field(default_factory=list)
    allow_deadlock: bool = False
    distinct_computations: int = 0
    dedupe_ratio: float = 1.0
    engine_stats: Optional[object] = field(default=None, compare=False)
    failing_run_choices: Dict[int, Tuple[int, ...]] = field(
        default_factory=dict, compare=False)

    @property
    def ok(self) -> bool:
        return (
            all(v.holds for v in self.verdicts.values())
            and not self.program_spec_failures
            and not self.legality_failures
            and (self.allow_deadlock or self.deadlocks == 0)
        )

    def verdict(self, restriction_name: str) -> RestrictionVerdict:
        try:
            return self.verdicts[restriction_name]
        except KeyError:
            raise VerificationError(
                f"no verdict for restriction {restriction_name!r}"
            ) from None

    def failed_restrictions(self) -> List[str]:
        return [name for name, v in self.verdicts.items() if not v.holds]

    def signature(self) -> Tuple:
        """Canonical content tuple for determinism comparisons.

        Two reports with equal signatures agree on every verdict, every
        failing-run index, and every census number -- the engine's
        parallel-equals-serial guarantee is asserted over exactly this.
        """
        return (
            self.problem_name,
            self.exhaustive,
            self.runs_checked,
            self.deadlocks,
            self.truncated,
            self.distinct_computations,
            tuple(sorted(
                (name, v.holds, tuple(v.failing_runs))
                for name, v in self.verdicts.items()
            )),
            tuple(self.program_spec_failures),
            tuple(self.legality_failures),
        )

    def summary(self) -> str:
        mode = "all" if self.exhaustive else "sampled"
        lines = [
            f"verification against {self.problem_name!r}: "
            f"{'VERIFIED' if self.ok else 'FAILED'} "
            f"({mode} {self.runs_checked} runs, "
            f"{self.distinct_computations} distinct computations, "
            f"{self.deadlocks} deadlocks, "
            f"{self.truncated} truncated)"
        ]
        for v in self.verdicts.values():
            lines.append(f"  {v}")
        if self.program_spec_failures:
            lines.append(
                f"  program-spec failures in runs {self.program_spec_failures[:5]}"
            )
        if self.legality_failures:
            lines.append(
                f"  projection-legality failures in runs "
                f"{self.legality_failures[:5]}"
            )
        return "\n".join(lines)


def check_projection(
    computation: Computation,
    correspondence: Correspondence,
    problem_spec: Specification,
    **check_kwargs,
) -> CheckResult:
    """Project one computation and check it against the problem spec."""
    projected = project(computation, correspondence)
    return problem_spec.check(projected, **check_kwargs)


def verify_program(
    program: Program,
    problem_spec: Specification,
    correspondence: Correspondence,
    program_spec: Optional[Specification] = None,
    max_steps: int = 10_000,
    max_runs: int = 100_000,
    sample: int = 200,
    seed: int = 0,
    allow_deadlock: bool = False,
    temporal_mode: str = "compiled",
    exploration: Optional[ExplorationResult] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress=None,
    tracer=None,
    por: bool = True,
    slice: bool = True,
    dfa: bool = True,
) -> VerificationReport:
    """The paper's proof obligation, executed by :mod:`repro.engine`.

    ``jobs`` fans exploration-and-checking out across that many worker
    processes (frontier-sharded DFS; the report is identical to
    ``jobs=1`` by construction).  ``cache_dir`` enables the persistent
    result cache, making re-verification of an unchanged workload
    incremental.  ``progress`` installs an engine progress hook.
    ``tracer`` (a :class:`repro.obs.Tracer`) records the whole
    verification as a span tree -- the CLI's ``--trace FILE``.
    ``por`` (default on) enables ample-set partial-order reduction of
    the exploration (:mod:`repro.engine.por`): redundant interleavings
    are pruned at generation time, preserving the fingerprint set,
    every verdict and every witness; the CLI's ``--no-por`` turns it
    off (run indices and censuses then count all interleavings).
    ``slice`` (default on) enables computation slicing
    (:mod:`repro.core.slice`): regular temporal restrictions are
    decided exactly on the join-closed sublattice of satisfying cuts
    instead of walking the history lattice; non-regular shapes fall
    back to the walk, so verdicts and details are identical either
    way.  The CLI's ``--no-slice`` turns it off.
    ``dfa`` (default on) enables restriction automata
    (:mod:`repro.core.automata`): temporal restrictions compile to DFAs
    over the event alphabet, leaf-eligible checks are resolved by
    automaton, and exploration prefixes are monitored so doomed
    branches record their verdicts early.  Fingerprint sets, verdicts
    and witnesses are byte-identical either way; the CLI's ``--no-dfa``
    turns it off.

    Pass ``exploration`` to reuse runs already gathered (e.g. when
    verifying one program against several problem variants).
    """
    # imported here, not at module level: the engine builds
    # VerificationReports, so it imports this module
    from ..engine import Engine, EngineConfig

    config = EngineConfig(
        jobs=jobs,
        cache_dir=cache_dir,
        max_steps=max_steps,
        max_runs=max_runs,
        sample=sample,
        seed=seed,
        temporal_mode=temporal_mode,
        allow_deadlock=allow_deadlock,
        progress=progress,
        tracer=tracer,
        por=por,
        slice=slice,
        dfa=dfa,
    )
    return Engine(config).verify(
        program, problem_spec, correspondence,
        program_spec=program_spec, exploration=exploration,
    )
