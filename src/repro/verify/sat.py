"""``PROG sat R``: bounded exhaustive verification (Section 9, step 2).

"Prove that each restriction Rᵢ in P is satisfied by the corresponding
significant objects in PROG: (∀ Rᵢ ∈ P)[PROG sat Rᵢ]."

:func:`verify_program` mechanises this: explore the program's legal
computations (exhaustively up to bounds, or by seeded sampling), project
each onto the significant objects, and check every P-restriction on
every projection.  Optionally the *program* specification is checked on
the raw computations too -- catching instrumentation bugs where the
interpreter's output is not even a legal PROG computation.

Deadlock: runs where some process is blocked forever are counted and,
by default, fail verification ("lack of deadlock" is one of the
properties the paper proves of its applications).  Pass
``allow_deadlock=True`` when deadlock is the expected outcome being
demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.checker import CheckResult
from ..core.computation import Computation
from ..core.errors import VerificationError
from ..core.specification import Specification
from ..sim.runtime import Program, Run
from ..sim.scheduler import ExplorationResult, explore_or_sample
from .correspondence import Correspondence
from .projection import project


@dataclass
class RestrictionVerdict:
    """Aggregate verdict for one problem restriction across all runs."""

    name: str
    holds: bool = True
    failing_runs: List[int] = field(default_factory=list)

    def __str__(self) -> str:
        if self.holds:
            return f"[OK ] {self.name}"
        shown = ", ".join(map(str, self.failing_runs[:5]))
        more = "..." if len(self.failing_runs) > 5 else ""
        return f"[FAIL] {self.name} (runs {shown}{more})"


@dataclass
class VerificationReport:
    """Everything :func:`verify_program` learned."""

    problem_name: str
    exhaustive: bool
    runs_checked: int = 0
    deadlocks: int = 0
    truncated: int = 0
    verdicts: Dict[str, RestrictionVerdict] = field(default_factory=dict)
    program_spec_failures: List[int] = field(default_factory=list)
    legality_failures: List[int] = field(default_factory=list)
    allow_deadlock: bool = False

    @property
    def ok(self) -> bool:
        return (
            all(v.holds for v in self.verdicts.values())
            and not self.program_spec_failures
            and not self.legality_failures
            and (self.allow_deadlock or self.deadlocks == 0)
        )

    def verdict(self, restriction_name: str) -> RestrictionVerdict:
        try:
            return self.verdicts[restriction_name]
        except KeyError:
            raise VerificationError(
                f"no verdict for restriction {restriction_name!r}"
            ) from None

    def failed_restrictions(self) -> List[str]:
        return [name for name, v in self.verdicts.items() if not v.holds]

    def summary(self) -> str:
        mode = "all" if self.exhaustive else "sampled"
        lines = [
            f"verification against {self.problem_name!r}: "
            f"{'VERIFIED' if self.ok else 'FAILED'} "
            f"({mode} {self.runs_checked} runs, {self.deadlocks} deadlocks, "
            f"{self.truncated} truncated)"
        ]
        for v in self.verdicts.values():
            lines.append(f"  {v}")
        if self.program_spec_failures:
            lines.append(
                f"  program-spec failures in runs {self.program_spec_failures[:5]}"
            )
        if self.legality_failures:
            lines.append(
                f"  projection-legality failures in runs "
                f"{self.legality_failures[:5]}"
            )
        return "\n".join(lines)


def check_projection(
    computation: Computation,
    correspondence: Correspondence,
    problem_spec: Specification,
    **check_kwargs,
) -> CheckResult:
    """Project one computation and check it against the problem spec."""
    projected = project(computation, correspondence)
    return problem_spec.check(projected, **check_kwargs)


def verify_program(
    program: Program,
    problem_spec: Specification,
    correspondence: Correspondence,
    program_spec: Optional[Specification] = None,
    max_steps: int = 10_000,
    max_runs: int = 100_000,
    sample: int = 200,
    seed: int = 0,
    allow_deadlock: bool = False,
    temporal_mode: str = "lattice",
    exploration: Optional[ExplorationResult] = None,
) -> VerificationReport:
    """The paper's proof obligation, executed.

    Pass ``exploration`` to reuse runs already gathered (e.g. when
    verifying one program against several problem variants).
    """
    result = exploration or explore_or_sample(
        program, max_steps=max_steps, max_runs=max_runs, sample=sample,
        seed=seed,
    )
    report = VerificationReport(
        problem_name=problem_spec.name,
        exhaustive=result.exhaustive,
        allow_deadlock=allow_deadlock,
    )
    for r in problem_spec.all_restrictions():
        report.verdicts[r.name] = RestrictionVerdict(r.name)

    for i, run in enumerate(result.runs):
        report.runs_checked += 1
        if run.deadlocked:
            report.deadlocks += 1
        if run.truncated:
            report.truncated += 1
        comp = run.computation
        if program_spec is not None:
            prog_result = program_spec.check(comp, temporal_mode=temporal_mode)
            if not prog_result.ok:
                report.program_spec_failures.append(i)
        projected = project(comp, correspondence)
        problem_result = problem_spec.check(projected,
                                            temporal_mode=temporal_mode)
        if problem_result.legality_violations:
            report.legality_failures.append(i)
        for outcome in problem_result.outcomes:
            if not outcome.holds:
                verdict = report.verdicts[outcome.name]
                verdict.holds = False
                verdict.failing_runs.append(i)
    return report
