"""Blocking client for the serve API (``http.client``, stdlib only).

One connection per request: the daemon answers every call with
``Connection: close``, and a verification service is not a place where
connection reuse buys anything measurable.  The event stream is
exposed as a generator of parsed JSONL records, so callers iterate
live progress exactly as they would iterate a ``--trace`` file's
lines.

``repro submit`` is a thin veneer over this class, and the serve test
suite and CI smoke job drive the daemon through it -- the client *is*
the reference consumer of the protocol.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from ..core.errors import VerificationError


class ServeError(VerificationError):
    """A non-2xx daemon response, carrying the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talks to one daemon at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Any = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            try:
                parsed = json.loads(data.decode("utf-8")) if data else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeError(resp.status,
                                 f"non-JSON response: {data[:200]!r}")
            if resp.status >= 400:
                raise ServeError(resp.status,
                                 parsed.get("error", "request failed")
                                 if isinstance(parsed, dict) else str(parsed))
            return parsed
        finally:
            conn.close()

    def _raw(self, method: str, path: str) -> "tuple[int, bytes]":
        """(status, body) without JSON decoding -- /metrics is text."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    # -- endpoints ----------------------------------------------------------

    def cases(self) -> List[Dict[str, Any]]:
        """The catalog: name, language, mutant availability."""
        return self._request("GET", "/cases")["cases"]

    def submit(self, spec_or_specs: Union[Dict[str, Any],
                                          List[Dict[str, Any]]],
               ) -> List[str]:
        """Submit one spec object or a batch; returns the job ids."""
        out = self._request("POST", "/jobs", payload=spec_or_specs)
        return [j["id"] for j in out["jobs"]]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def jobs_list(self) -> List[Dict[str, Any]]:
        """Light rows for every job the daemon has accepted."""
        return self._request("GET", "/jobs")["jobs"]

    def metrics_text(self) -> str:
        """The raw Prometheus text body of ``GET /metrics``."""
        status, body = self._raw("GET", "/metrics")
        if status >= 400:
            raise ServeError(status, body[:200].decode("utf-8", "replace"))
        return body.decode("utf-8")

    def healthz(self) -> bool:
        """Liveness: True iff ``GET /healthz`` answered 200."""
        status, _body = self._raw("GET", "/healthz")
        return status == 200

    def readyz(self) -> bool:
        """Readiness: True iff the daemon reports its pool primed
        (``GET /readyz`` answers 503 until then -- not an error)."""
        status, _body = self._raw("GET", "/readyz")
        return status == 200

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.02) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            if time.monotonic() >= deadline:
                raise ServeError(
                    408, f"job {job_id} not finished within {timeout}s")
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's schema-v1 records, parsed, until it completes."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                data = resp.read()
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except Exception:  # noqa: BLE001 - error body is best-effort
                    message = data[:200].decode("utf-8", "replace")
                raise ServeError(resp.status, message)
            buffer = b""
            while True:
                chunk = resp.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            conn.close()

    # -- conveniences -------------------------------------------------------

    def verify(self, spec: Dict[str, Any],
               timeout: float = 300.0) -> Dict[str, Any]:
        """Submit one job and block for its result snapshot."""
        (job_id,) = self.submit(spec)
        return self.wait(job_id, timeout=timeout)

    def ping(self, retries: int = 50, delay: float = 0.1) -> bool:
        """True once the daemon answers ``/stats`` (startup helper)."""
        for _ in range(retries):
            try:
                self.stats()
                return True
            except (OSError, ServeError):
                time.sleep(delay)
        return False
