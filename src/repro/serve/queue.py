"""Job lifecycle for the serve daemon.

A :class:`Job` moves ``queued -> running -> done|failed|cancelled``.
The daemon's HTTP side lives on an asyncio event loop while the engine
work runs in executor threads, so everything here is guarded by plain
``threading`` primitives and read with short critical sections; the
event-stream endpoint *polls* a job's monotonically growing record
buffer rather than relying on cross-thread wakeups (a 20 ms poll is
invisible next to verification times and removes a whole class of
lost-notification bugs).

Cancellation is a cooperative flag: cancelling a queued job prevents
it from starting; cancelling a running job trips the engine's
``cancel`` hook, which raises :class:`repro.engine.JobCancelled`
between task results (tasks already dispatched to workers finish).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .protocol import JobSpec


class JobState:
    """String constants; states are compared by identity-safe value."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One submitted verification and everything observed about it."""

    id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    #: populated when DONE: signature (canonical JSON), summary text,
    #: ok flag, and engine counters
    result: Optional[Dict[str, Any]] = None
    #: populated when FAILED
    error: Optional[str] = None
    #: schema-v1 records (meta first) grown while the job runs; the
    #: events endpoint streams this buffer by index
    records: List[Dict[str, Any]] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: perf-counter stamps: running start, terminal transition
    t_started: Optional[float] = None
    t_finished: Optional[float] = None

    # -- thread-safe accessors (called from loop and executor threads) -----

    def append_records(self, records: List[Dict[str, Any]]) -> None:
        with self.lock:
            self.records.extend(records)

    def records_from(self, start: int) -> List[Dict[str, Any]]:
        with self.lock:
            return self.records[start:]

    def _wall_s(self) -> Optional[float]:
        # caller holds self.lock
        if self.t_started is None:
            return None
        end = (self.t_finished if self.t_finished is not None
               else time.perf_counter())
        return end - self.t_started

    @property
    def wall_s(self) -> Optional[float]:
        """Running/ran seconds: live for a running job, final after."""
        with self.lock:
            return self._wall_s()

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` body."""
        with self.lock:
            out: Dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "spec": self.spec.to_json(),
                "label": self.spec.describe(),
                "events": len(self.records),
            }
            wall = self._wall_s()
            if wall is not None:
                out["wall_s"] = wall
            if self.result is not None:
                out["result"] = self.result
            if self.error is not None:
                out["error"] = self.error
            return out

    def listing(self) -> Dict[str, Any]:
        """The light ``GET /jobs`` row: identity + state, no payloads."""
        with self.lock:
            out: Dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "label": self.spec.describe(),
            }
            wall = self._wall_s()
            if wall is not None:
                out["wall_s"] = wall
            return out

    def transition(self, state: str, result: Optional[Dict[str, Any]] = None,
                   error: Optional[str] = None) -> None:
        with self.lock:
            self.state = state
            if state in JobState.TERMINAL and self.t_finished is None:
                self.t_finished = time.perf_counter()
            if result is not None:
                self.result = result
            if error is not None:
                self.error = error

    def start_running(self) -> bool:
        """QUEUED -> RUNNING; False if the job was cancelled first."""
        with self.lock:
            if self.cancel_event.is_set() or self.state != JobState.QUEUED:
                return False
            self.state = JobState.RUNNING
            self.t_started = time.perf_counter()
            return True

    @property
    def finished(self) -> bool:
        with self.lock:
            return self.state in JobState.TERMINAL


class JobQueue:
    """Registry of all jobs the daemon has accepted, by id.

    Ids are dense (``j1``, ``j2``, ...): a daemon is one process and
    restarting it voids outstanding ids, so opaque tokens would buy
    nothing but unreadable logs.  Execution order and concurrency are
    the executor's concern (the service submits jobs to a bounded
    thread pool); this class only tracks identity and lifecycle.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def create(self, spec: JobSpec) -> Job:
        with self._lock:
            job = Job(id=f"j{next(self._ids)}", spec=spec)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Optional[bool]:
        """Request cancellation; None if unknown, False if already done.

        The state flip for a *queued* job happens here (it will never
        reach an executor thread to do it itself); a running job keeps
        state RUNNING until the engine unwinds with ``JobCancelled``.
        """
        job = self.get(job_id)
        if job is None:
            return None
        with job.lock:
            if job.state in JobState.TERMINAL:
                return False
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
        return True

    def listing(self) -> List[Dict[str, Any]]:
        """Light rows for every job, submission order (the ``GET /jobs``
        body and what ``repro top`` tails)."""
        return [job.listing() for job in self.all_jobs()]

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in (
            JobState.QUEUED, JobState.RUNNING, JobState.DONE,
            JobState.FAILED, JobState.CANCELLED)}
        for job in self.all_jobs():
            with job.lock:
                out[job.state] = out.get(job.state, 0) + 1
        return out
