"""``repro.serve`` -- verification as a service.

A long-lived daemon wrapping the :mod:`repro.engine` stack behind a
small JSON-over-HTTP API (stdlib ``asyncio`` only -- no web framework),
so repeat verifications pay neither interpreter startup nor
specification-plan compilation nor re-checking of already-judged
computations:

* **resident worker pool** -- the daemon forks its
  :class:`repro.engine.WorkerPool` once at startup; workers rebuild
  each workload from a picklable :class:`repro.engine.CaseRef` on
  first use and keep the built state (compiled ``SpecPlan``\\ s,
  per-process dedupe memos) hot across requests;
* **shared result cache** -- one
  :class:`repro.engine.SharedResultCache` (LRU byte budget, hit/miss
  metrics) spans all requests, keyed by ``(spec key, computation
  fingerprint)``, so a warm resubmission replays verdicts instead of
  recomputing them;
* **streamed observability** -- every job is traced; ``GET
  /jobs/<id>/events`` streams the run as the existing schema-v1 JSONL
  span/metric records, so ``repro profile`` consumes a job stream
  exactly like a ``--trace`` file.

Modules: :mod:`.protocol` (request/response shapes and validation),
:mod:`.queue` (job lifecycle and cancellation), :mod:`.daemon` (the
service and the asyncio HTTP server), :mod:`.client` (blocking
``http.client`` consumer used by ``repro submit`` and the tests).

The daemon's catalog *is* the CLI catalog
(:func:`repro.cli.case_catalog`), and reports are produced by the same
engine code path as ``repro verify`` -- report signatures are
byte-identical between the two for every case and every ``--jobs``
setting (asserted in ``tests/test_serve.py`` and CI's serve-smoke job).

API summary (all request/response bodies JSON)::

    GET  /cases            catalog: name, language, mutant availability
    POST /jobs             submit one spec or a list of specs
    GET  /jobs             light listing of every accepted job
    GET  /jobs/<id>        status; report signature+summary when done
    GET  /jobs/<id>/events schema-v1 JSONL stream (live, then full)
    POST /jobs/<id>/cancel best-effort cancellation
    GET  /stats            pool, queue, and cache metrics
    GET  /metrics          Prometheus text exposition (not JSON)
    GET  /healthz          liveness (200 whenever the loop is up)
    GET  /readyz           readiness (503 until the pool is primed)
"""

from .client import ServeClient
from .daemon import VerificationService, run_daemon, serve_forever
from .protocol import (
    JobSpec,
    ProtocolError,
    catalog_entries,
    parse_job_spec,
    signature_json,
)
from .queue import Job, JobQueue, JobState

__all__ = [
    "ServeClient",
    "VerificationService", "run_daemon", "serve_forever",
    "JobSpec", "ProtocolError", "parse_job_spec", "signature_json",
    "catalog_entries",
    "Job", "JobQueue", "JobState",
]
