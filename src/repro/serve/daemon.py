"""The serve daemon: a resident verification service behind HTTP.

Two halves, deliberately decoupled:

* :class:`VerificationService` owns the long-lived engine machinery --
  the resident :class:`repro.engine.WorkerPool` (forked once, before
  any workload exists), the cross-request
  :class:`repro.engine.SharedResultCache`, a parent-side memo of built
  case objects, and a bounded executor that runs jobs.  It knows
  nothing about HTTP; tests drive it directly.
* :class:`ServeServer` is a hand-rolled ``asyncio`` HTTP/1.1 front end
  (stdlib only -- the whole repo's no-new-dependencies rule applies to
  the daemon too).  It parses just enough HTTP to route the endpoints
  and streams job events as close-delimited JSONL.

Telemetry rides on the same split: the service owns a cumulative
:class:`repro.obs.MetricsRegistry` (every finished job's engine
metrics fold in, counters accumulating and gauges taking the latest
value) plus a :class:`repro.obs.TelemetryHub` whose background sampler
refreshes the *live* gauges -- queue depth, jobs in flight, worker
utilisation, cache size, uptime -- so ``GET /metrics`` only renders a
registry snapshot (Prometheus text format) and never walks the pool
on the scrape path.  ``GET /healthz`` answers whenever the loop is up
(liveness); ``GET /readyz`` answers 200 only once the resident pool
is primed and the service is not shutting down.  When constructed
with a ``history_db`` path, the service also records one
:class:`repro.obs.RunHistory` row per completed job (including
failures), which ``repro history`` analyses offline.

Every job runs through :class:`repro.engine.Engine` with the *same*
configuration surface as ``repro verify``; the only differences are
where tasks execute (the resident pool) and where verdict outcomes
persist (the shared cache), neither of which can change a report --
that is the engine's determinism guarantee, and the serve test suite
asserts the resulting byte-identity per case and jobs setting.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import GemError, VerificationError
from ..engine import (
    Engine,
    EngineConfig,
    JobCancelled,
    SharedResultCache,
    WorkerPool,
)
from ..obs import (
    MetricsRegistry,
    RunHistory,
    TelemetryHub,
    Tracer,
    meta_record,
    render_prometheus,
    stats_snapshot,
    trace_records,
)
from .protocol import (
    JobSpec,
    ProtocolError,
    catalog_entries,
    parse_submission,
    signature_json,
)
from .queue import Job, JobQueue, JobState

#: How often the events endpoint re-checks a running job's buffer.
EVENT_POLL_SECONDS = 0.02


class VerificationService:
    """Resident engine state plus a job executor; the daemon's core."""

    def __init__(
        self,
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        cache_bytes: int = 32 << 20,
        job_workers: int = 2,
        history_db: Optional[str] = None,
        telemetry_interval: float = 0.5,
    ) -> None:
        self.metrics = MetricsRegistry()
        #: serialises registry mutation (job merges, sampler, service
        #: counters) against exposition renders
        self._metrics_lock = threading.RLock()
        self.shared_cache = SharedResultCache(
            max_bytes=cache_bytes, directory=cache_dir, metrics=self.metrics)
        # fork NOW, while the process is small and holds no workload:
        # resident workers rebuild state from CaseRefs, never inherit it
        self.pool = WorkerPool(jobs, resident=True)
        self.queue = JobQueue()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, job_workers),
            thread_name_prefix="serve-job")
        # parent-side build memo: the engine needs live objects for
        # sharding/merging even though workers rebuild their own
        self._objects: Dict[str, Tuple] = {}
        self._objects_lock = threading.Lock()
        self.job_workers = max(1, job_workers)
        self._closed = False
        self.history = RunHistory(history_db) if history_db else None
        self._started_at = time.monotonic()
        self.hub = TelemetryHub(self.metrics, self._sample,
                                interval=telemetry_interval).start()

    # -- telemetry ----------------------------------------------------------

    def _inc(self, name: str, value: float = 1.0) -> None:
        with self._metrics_lock:
            self.metrics.inc(name, value)

    def _sample(self, registry: MetricsRegistry) -> None:
        """The hub's sampler: refresh every live-state gauge."""
        counts = self.queue.counts()
        with self._metrics_lock:
            registry.set("serve.queue.depth", counts["queued"])
            registry.set("serve.jobs.inflight", counts["running"])
            registry.set("serve.worker.utilisation",
                         counts["running"] / self.job_workers)
            registry.set("serve.workers", self.pool.workers)
            registry.set("serve.job_workers", self.job_workers)
            registry.set("serve.uptime.seconds",
                         time.monotonic() - self._started_at)
            registry.set("serve.cache.entries", self.shared_cache.entries)
            registry.set("serve.cache.bytes", self.shared_cache.bytes_used)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text format)."""
        with self._metrics_lock:
            return render_prometheus(self.metrics)

    @property
    def ready(self) -> bool:
        """Pool primed (the hub has sampled it) and not shutting down."""
        return not self._closed and self.hub.samples > 0

    def _record_history(self, job: Job, *, ok: bool, mode: str,
                        signature: Any, wall_s: float,
                        stats: Dict[str, Any]) -> None:
        """One history row per completed job; never fails the job."""
        if self.history is None:
            return
        spec = job.spec
        try:
            self.history.record(
                source="serve",
                case=spec.case if spec.case else "inline",
                flags={"jobs": spec.jobs, "por": spec.por,
                       "slice": spec.slice, "dfa": spec.dfa,
                       "compile": spec.compile, "mutant": spec.mutant},
                ok=ok, mode=mode, signature=signature, wall_s=wall_s,
                stats=stats)
        except Exception as exc:  # noqa: BLE001 - history is best-effort
            warnings.warn(f"run-history write failed: {exc!r}",
                          RuntimeWarning, stacklevel=2)

    # -- workload construction ---------------------------------------------

    def _objects_for(self, spec: JobSpec) -> Tuple:
        """(program, problem_spec, correspondence, program_spec), memoised.

        Keyed by the CaseRef state key, so the parent compiles each
        workload's specification plans once -- warm resubmissions skip
        straight to exploration.
        """
        ref = spec.case_ref()
        key = ref.state_key()
        with self._objects_lock:
            objs = self._objects.get(key)
            if objs is None:
                objs = ref.build_objects()
                self._objects[key] = objs
            return objs

    # -- job execution ------------------------------------------------------

    def submit(self, specs: List[JobSpec]) -> List[Job]:
        if self._closed:
            raise VerificationError("service is shutting down")
        jobs = [self.queue.create(spec) for spec in specs]
        for job in jobs:
            self._inc("serve.jobs.submitted")
            self._executor.submit(self._run_job, job)
        return jobs

    def _run_job(self, job: Job) -> None:
        if not job.start_running():
            # cancelled while queued; JobQueue.cancel already flipped it
            self._inc("serve.jobs.cancelled")
            return
        job.append_records([meta_record()])
        spec = job.spec
        tracer = Tracer()

        def progress(event: str, payload: Dict[str, Any]) -> None:
            # live progress as schema-valid metric records: a consumer
            # tailing /events sees counters it can already parse
            job.append_records([{
                "type": "metric", "kind": "counter",
                "name": "serve.progress",
                "labels": {"event": event,
                           **{k: str(v) for k, v in payload.items()}},
                "value": 1.0,
            }])

        config = EngineConfig(
            jobs=spec.jobs,
            temporal_mode=spec.temporal_mode,
            por=spec.por,
            slice=spec.slice,
            dfa=spec.dfa,
            history_cap=spec.history_cap,
            max_steps=spec.max_steps,
            max_runs=spec.max_runs,
            tracer=tracer,
            progress=progress,
            pool=self.pool,
            case_ref=spec.case_ref(),
            shared_cache=self.shared_cache,
            cancel=job.cancel_event.is_set,
        )
        try:
            program, pspec, corr, prspec = self._objects_for(spec)
            engine = Engine(config)
            report = engine.verify(program, pspec, corr, program_spec=prspec)
        except JobCancelled:
            self._inc("serve.jobs.cancelled")
            job.transition(JobState.CANCELLED)
            return
        except GemError as exc:
            self._inc("serve.jobs.failed")
            self._record_history(job, ok=False, mode="failed",
                                 signature=[], wall_s=job.wall_s or 0.0,
                                 stats={})
            job.transition(JobState.FAILED, error=str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - a job must not kill the daemon
            self._inc("serve.jobs.failed")
            self._record_history(job, ok=False, mode="failed",
                                 signature=[], wall_s=job.wall_s or 0.0,
                                 stats={})
            job.transition(JobState.FAILED,
                           error=f"{type(exc).__name__}: {exc}")
            return

        stats = engine.last_stats
        assert stats is not None
        # the full schema-v1 trace, minus its meta header (the stream
        # already opened with one): spans then metrics then explanations
        job.append_records(trace_records(tracer, stats.metrics)[1:])
        self._inc("serve.jobs.done")
        self._inc("serve.cache.hits", stats.cache_hits)
        self._inc("serve.cache.misses", stats.checks_performed)
        # fold the job's engine metrics into the cumulative service
        # registry: counters accumulate across jobs, gauges (the
        # engine.* stats view) take the latest job's value
        with self._metrics_lock:
            self.metrics.merge_records(stats.metrics.records())
        wall_s = job.wall_s or 0.0
        signature = signature_json(report.signature())
        self._record_history(job, ok=report.ok, mode=stats.mode,
                             signature=signature, wall_s=wall_s,
                             stats=stats_snapshot(stats))
        job.transition(JobState.DONE, result={
            "ok": report.ok,
            "signature": signature,
            "summary": report.summary(),
            "wall_s": wall_s,
            "stats": {
                "mode": stats.mode,
                "jobs": stats.jobs,
                "shards": stats.shards,
                "runs": stats.runs,
                "distinct_computations": stats.distinct_computations,
                "checks_performed": stats.checks_performed,
                "cache_hits": stats.cache_hits,
                "dedupe_hits": stats.dedupe_hits,
                "por_nodes": stats.por_nodes,
                "por_pruned": stats.por_pruned,
                "slice_hits": stats.slice_hits,
                "slice_fallbacks": stats.slice_fallbacks,
                "dfa_probes": stats.dfa_probes,
                "dfa_cuts": stats.dfa_cuts,
                "dfa_accepts": stats.dfa_accepts,
                "dfa_hits": stats.dfa_hits,
                "dfa_inert": stats.dfa_inert,
            },
        })

    # -- introspection ------------------------------------------------------

    def stats_json(self) -> Dict[str, Any]:
        m = self.metrics
        return {
            "pool": {"jobs": self.pool.jobs, "workers": self.pool.workers,
                     "resident": self.pool.resident},
            "jobs": self.queue.counts(),
            "cache": {
                "entries": self.shared_cache.entries,
                "bytes": self.shared_cache.bytes_used,
                "evictions": m.get("cache.evictions"),
                "hits": m.get("serve.cache.hits"),
                "misses": m.get("serve.cache.misses"),
            },
        }

    def close(self) -> None:
        self._closed = True
        self.hub.stop()
        self._executor.shutdown(wait=True)
        self.pool.close()
        self.shared_cache.save()


# -- HTTP front end ---------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                409: "Conflict", 500: "Internal Server Error",
                503: "Service Unavailable"}

_MAX_BODY = 4 << 20


async def _read_request(reader: asyncio.StreamReader,
                        ) -> Tuple[str, str, bytes]:
    """(method, path, body) of one HTTP/1.1 request; minimal by design."""
    line = await reader.readline()
    if not line:
        raise ConnectionResetError
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "bad content-length") from None
    if length > _MAX_BODY:
        raise _HttpError(400, f"body exceeds {_MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target.split("?", 1)[0], body


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _response(status: int, payload: Any) -> bytes:
    body = _json_bytes(payload)
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


#: The content type Prometheus scrapers expect from /metrics.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _text_response(status: int, text: str,
                   content_type: str = _METRICS_CONTENT_TYPE) -> bytes:
    body = text.encode("utf-8")
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


class ServeServer:
    """Routes the serve endpoints onto a :class:`VerificationService`."""

    def __init__(self, service: VerificationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                writer.write(_response(exc.status, {"error": exc.message}))
            except (ConnectionResetError, asyncio.IncompleteReadError):
                pass
            except Exception as exc:  # noqa: BLE001 - keep the daemon up
                writer.write(_response(500, {
                    "error": f"{type(exc).__name__}: {exc}"}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/cases" and method == "GET":
            writer.write(_response(200, {"cases": catalog_entries()}))
            return
        if path == "/stats" and method == "GET":
            writer.write(_response(200, self.service.stats_json()))
            return
        if path == "/metrics" and method == "GET":
            writer.write(_text_response(200, self.service.metrics_text()))
            return
        if path == "/healthz" and method == "GET":
            # liveness: the loop answered, nothing else is claimed
            writer.write(_response(200, {"ok": True}))
            return
        if path == "/readyz" and method == "GET":
            ready = self.service.ready
            writer.write(_response(200 if ready else 503,
                                   {"ready": ready}))
            return
        if path == "/jobs" and method == "GET":
            writer.write(_response(
                200, {"jobs": self.service.queue.listing()}))
            return
        if path == "/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.service.queue.get(parts[1])
            if job is None:
                raise _HttpError(404, f"unknown job {parts[1]!r}")
            if len(parts) == 2 and method == "GET":
                writer.write(_response(200, job.snapshot()))
                return
            if parts[2:] == ["events"] and method == "GET":
                await self._stream_events(job, writer)
                return
            if parts[2:] == ["cancel"] and method == "POST":
                accepted = self.service.queue.cancel(parts[1])
                if accepted is False:
                    raise _HttpError(409, f"job {parts[1]} already finished")
                writer.write(_response(202, {"id": job.id,
                                             "cancelling": True}))
                return
        raise _HttpError(404 if method == "GET" else 405,
                         f"no route for {method} {path}")

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        from ..cli import case_catalog

        try:
            specs = parse_submission(payload, case_catalog())
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from None
        loop = asyncio.get_running_loop()
        # submit() forks nothing but does take locks; keep the loop free
        jobs = await loop.run_in_executor(
            None, self.service.submit, specs)
        listing = [{"id": j.id, "label": j.spec.describe()} for j in jobs]
        if isinstance(payload, list):
            writer.write(_response(202, {"jobs": listing}))
        else:
            writer.write(_response(202, {**listing[0], "jobs": listing}))

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter) -> None:
        """Close-delimited JSONL: live records now, the rest as they come.

        The buffer's first record is the schema meta header, written by
        the job thread before anything else, so a stream picked up at
        any point from index 0 is a valid trace prefix; ``repro
        profile`` reads a completed stream exactly like a ``--trace``
        file.
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/jsonl\r\n"
                     b"Connection: close\r\n\r\n")
        cursor = 0
        while True:
            batch = job.records_from(cursor)
            if batch:
                cursor += len(batch)
                writer.write(b"".join(_json_bytes(rec) for rec in batch))
                await writer.drain()
                continue
            # records are appended strictly before the terminal state is
            # set, so observing `finished` with an empty tail is final
            if job.finished and not job.records_from(cursor):
                return
            await asyncio.sleep(EVENT_POLL_SECONDS)


# -- entry points ------------------------------------------------------------


class ServerHandle:
    """A daemon running on a background thread (tests, bench, smoke)."""

    def __init__(self, server: ServeServer, service: VerificationService,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        async def _shutdown() -> None:
            await self.server.stop()

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self.service.close()


def start_in_thread(service: Optional[VerificationService] = None,
                    host: str = "127.0.0.1", port: int = 0,
                    **service_kwargs: Any) -> ServerHandle:
    """Start a daemon on a fresh event loop in a background thread."""
    service = service or VerificationService(**service_kwargs)
    server = ServeServer(service, host, port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()
        # drain cancelled tasks so the loop closes cleanly
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=run, name="serve-daemon", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon failed to start within 30s")
    return ServerHandle(server, service, loop, thread)


async def serve_forever(host: str, port: int,
                        service: VerificationService) -> None:
    """Run the daemon until cancelled (the ``repro serve`` command)."""
    server = ServeServer(service, host, port)
    await server.start()
    print(f"repro serve: listening on http://{host}:{server.port} "
          f"({service.pool.workers} worker(s), "
          f"{service.job_workers} concurrent job(s))",
          flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def run_daemon(host: str = "127.0.0.1", port: int = 8642,
               jobs: int = 2, cache_dir: Optional[str] = None,
               cache_bytes: int = 32 << 20, job_workers: int = 2,
               history_db: Optional[str] = None) -> int:
    """Blocking entry point behind ``repro serve``."""
    service = VerificationService(jobs=jobs, cache_dir=cache_dir,
                                  cache_bytes=cache_bytes,
                                  job_workers=job_workers,
                                  history_db=history_db)
    try:
        asyncio.run(serve_forever(host, port, service))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        service.close()
    return 0
