"""Request/response shapes for the serve API.

The wire format is deliberately thin: a *job spec* is the JSON mirror
of the ``repro verify`` flag set (case + mutant + jobs + por + compile
+ history_cap + bounds), or an ``inline`` fuzz-program payload for
workloads that are not in the catalog.  Parsing is strict -- unknown
keys and out-of-domain values are :class:`ProtocolError`\\ s, not
silent defaults -- because a daemon that guesses what a client meant
produces reports nobody asked for.

Everything here is pure data transformation (no I/O, no asyncio), so
the same validation runs in the daemon, the client (pre-flight), and
the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.checker import DEFAULT_HISTORY_CAP
from ..engine import CaseRef
from ..sim.scheduler import DEFAULT_MAX_RUNS, DEFAULT_MAX_STEPS


class ProtocolError(ValueError):
    """A malformed or out-of-domain API request."""


#: Keys accepted in a job-spec JSON object.
_SPEC_KEYS = frozenset({
    "case", "mutant", "inline", "jobs", "por", "slice", "dfa", "compile",
    "history_cap", "max_steps", "max_runs",
})


@dataclass(frozen=True)
class JobSpec:
    """One validated verification request.

    Mirrors the ``repro verify`` CLI surface: ``compile=False`` is
    ``--no-compile`` (lattice interpreter), ``por=False`` is
    ``--no-por``, ``slice=False`` is ``--no-slice`` (walk the history
    lattice for every temporal check), ``dfa=False`` is ``--no-dfa``
    (no restriction automata), ``jobs`` caps the worker
    fan-out *for this job* (the
    resident pool is shared, so this bounds shard parallelism, not
    processes).  ``inline`` carries a fuzz-program payload
    ``{"procs": [...], "deps": [[...], ...], "bug": str|null}`` for
    catalog-free verification.
    """

    case: Optional[str] = None
    mutant: bool = False
    inline: Optional[Tuple] = None
    jobs: int = 1
    por: bool = True
    slice: bool = True
    dfa: bool = True
    compile: bool = True
    history_cap: int = DEFAULT_HISTORY_CAP
    max_steps: int = DEFAULT_MAX_STEPS
    max_runs: int = DEFAULT_MAX_RUNS

    @property
    def temporal_mode(self) -> str:
        return "compiled" if self.compile else "lattice"

    def case_ref(self) -> CaseRef:
        """The resident-pool rebuild recipe for this spec.

        ``trace=True`` unconditionally: the daemon traces every job so
        the events endpoint can stream it, and a single trace setting
        means one hot worker state per workload instead of two.
        """
        return CaseRef(
            case=self.case, mutant=self.mutant, inline=self.inline,
            temporal_mode=self.temporal_mode,
            max_steps=self.max_steps, max_runs=self.max_runs,
            history_cap=self.history_cap, por=self.por, slice=self.slice,
            dfa=self.dfa, trace=True,
        )

    def describe(self) -> str:
        """Short human label for logs and job listings."""
        name = self.case if self.case else "inline"
        flags = []
        if self.mutant:
            flags.append("mutant")
        if not self.por:
            flags.append("no-por")
        if not self.slice:
            flags.append("no-slice")
        if not self.dfa:
            flags.append("no-dfa")
        if not self.compile:
            flags.append("no-compile")
        if self.jobs != 1:
            flags.append(f"jobs={self.jobs}")
        return name + (f" [{','.join(flags)}]" if flags else "")

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "mutant": self.mutant, "jobs": self.jobs, "por": self.por,
            "slice": self.slice, "dfa": self.dfa, "compile": self.compile,
        }
        if self.case is not None:
            out["case"] = self.case
        if self.inline is not None:
            procs, deps, bug = self.inline
            out["inline"] = {"procs": list(procs),
                             "deps": [list(d) for d in deps], "bug": bug}
        if self.history_cap != DEFAULT_HISTORY_CAP:
            out["history_cap"] = self.history_cap
        if self.max_steps != DEFAULT_MAX_STEPS:
            out["max_steps"] = self.max_steps
        if self.max_runs != DEFAULT_MAX_RUNS:
            out["max_runs"] = self.max_runs
        return out


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _parse_inline(obj: Any) -> Tuple:
    """Validate an inline fuzz-program payload into CaseRef primitives."""
    _require(isinstance(obj, Mapping), "'inline' must be an object")
    extra = set(obj) - {"procs", "deps", "bug"}
    _require(not extra, f"unknown inline key(s): {sorted(extra)}")
    procs = obj.get("procs")
    _require(isinstance(procs, list) and procs
             and all(isinstance(p, int) and p > 0 for p in procs),
             "'inline.procs' must be a non-empty list of positive ints")
    deps = obj.get("deps", [])
    _require(isinstance(deps, list), "'inline.deps' must be a list")
    for d in deps:
        _require(isinstance(d, list) and len(d) == 4
                 and all(isinstance(x, int) for x in d),
                 "'inline.deps' entries must be 4-int lists")
    bug = obj.get("bug")
    _require(bug is None or isinstance(bug, str),
             "'inline.bug' must be a string or null")
    return (tuple(procs), tuple(tuple(d) for d in deps), bug)


def parse_job_spec(payload: Any,
                   known_cases: Optional[Mapping[str, Any]] = None,
                   ) -> JobSpec:
    """Validate one job-spec JSON object into a :class:`JobSpec`.

    ``known_cases`` (the catalog mapping) makes unknown case names a
    parse-time error rather than a worker-side one.
    """
    _require(isinstance(payload, Mapping), "job spec must be a JSON object")
    extra = set(payload) - _SPEC_KEYS
    _require(not extra, f"unknown job key(s): {sorted(extra)}")

    case = payload.get("case")
    inline = payload.get("inline")
    _require((case is None) != (inline is None),
             "exactly one of 'case' or 'inline' is required")
    if case is not None:
        _require(isinstance(case, str), "'case' must be a string")
        if known_cases is not None:
            _require(case in known_cases,
                     f"unknown case {case!r}; GET /cases lists them")

    def _bool(key: str, default: bool) -> bool:
        value = payload.get(key, default)
        _require(isinstance(value, bool), f"'{key}' must be a boolean")
        return value

    def _int(key: str, default: int, minimum: int) -> int:
        value = payload.get(key, default)
        _require(isinstance(value, int) and not isinstance(value, bool)
                 and value >= minimum,
                 f"'{key}' must be an integer >= {minimum}")
        return value

    return JobSpec(
        case=case,
        mutant=_bool("mutant", False),
        inline=_parse_inline(inline) if inline is not None else None,
        jobs=_int("jobs", 1, 1),
        por=_bool("por", True),
        slice=_bool("slice", True),
        dfa=_bool("dfa", True),
        compile=_bool("compile", True),
        history_cap=_int("history_cap", DEFAULT_HISTORY_CAP, 1),
        max_steps=_int("max_steps", DEFAULT_MAX_STEPS, 1),
        max_runs=_int("max_runs", DEFAULT_MAX_RUNS, 1),
    )


def parse_submission(payload: Any,
                     known_cases: Optional[Mapping[str, Any]] = None,
                     limit: int = 256) -> List[JobSpec]:
    """A ``POST /jobs`` body: one spec object, or a list of them."""
    if isinstance(payload, list):
        _require(bool(payload), "job list must not be empty")
        _require(len(payload) <= limit,
                 f"job list exceeds the batch limit of {limit}")
        return [parse_job_spec(p, known_cases) for p in payload]
    return [parse_job_spec(payload, known_cases)]


def signature_json(signature: Tuple) -> List[Any]:
    """A report signature as canonical JSON (tuples become lists).

    Byte-identity comparisons between daemon and one-shot CLI runs are
    made over exactly this rendering -- JSON has one encoding for it,
    while Python tuples vs. lists would make equal content look
    different.
    """
    return json.loads(json.dumps(signature))


def catalog_entries() -> List[Dict[str, Any]]:
    """The ``GET /cases`` body; shared with ``repro list --json``."""
    from ..cli import case_catalog

    return [
        {"name": entry.name, "language": entry.language,
         "mutant": entry.has_mutant}
        for entry in case_catalog().values()
    ]
