"""Seeded random generators for GEM structures.

Everything the fuzzer feeds an oracle starts life here, and everything
is generated from an explicit ``random.Random`` instance -- the fuzzer
never touches the global RNG, so every artifact is reproducible from its
seed token alone.

The central artifact is the :class:`ComputationRecipe`: a pure-data,
``repr``-round-trippable description of one well-formed computation.
Recipes rather than computations are what the shrinker manipulates and
what repro snippets embed -- ``eval(repr(recipe))`` reconstructs the
artifact exactly, with no pickling and no reference to the generator's
RNG state.

Well-formedness by construction
-------------------------------
Generated ``⊳`` edges only ever point *forward* in insertion order.
Since the element order ``⇒ₑ`` also follows insertion order (occurrence
numbers are assigned per element as events are added), the union
``⊳ ∪ ⇒ₑ`` is a subrelation of the insertion total order and therefore
acyclic -- ``freeze()`` can always compute the temporal order.  When a
recipe carries a :class:`~repro.core.group.GroupStructure`, candidate
edges are filtered through ``may_enable`` first, so generated edges
respect the paper's access rules (Section 4, footnote 4) including
ports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.computation import Computation, ComputationBuilder
from ..core.element import EventClassRef
from ..core.formula import (
    And,
    AtElement,
    Concurrent,
    ElementPrecedes,
    Enables,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Occurred,
    Or,
    TemporallyPrecedes,
    TrueF,
)
from ..core.group import GroupDecl, GroupStructure

#: Event-class vocabulary: name -> parameter names (values are small ints).
EVENT_CLASSES: Dict[str, Tuple[str, ...]] = {
    "Go": (),
    "Ack": (),
    "Put": ("v",),
    "Get": ("v",),
}

_ELEMENT_NAMES = ("A", "B", "C", "D", "E", "F")


# ---------------------------------------------------------------------------
# Group recipes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupRecipe:
    """Pure-data description of one group declaration."""

    name: str
    members: Tuple[str, ...]
    #: (element, event_class) pairs designated as ports of this group
    ports: Tuple[Tuple[str, str], ...] = ()

    def to_decl(self) -> GroupDecl:
        return GroupDecl.make(
            self.name,
            self.members,
            ports=[EventClassRef(el, cls) for el, cls in self.ports],
        )


# ---------------------------------------------------------------------------
# Computation recipes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComputationRecipe:
    """A well-formed computation as plain data.

    ``events[i]`` is ``(element, event_class, params, threads)`` with
    ``params`` a tuple of ``(name, value)`` pairs; ``edges`` are
    ``(i, j)`` index pairs with ``i < j`` (enable edges forward in
    insertion order).  ``elements`` is the declared element universe
    (superset of the elements used) and ``groups`` the scope structure,
    both optional.
    """

    events: Tuple[Tuple[str, str, Tuple[Tuple[str, int], ...], Tuple[str, ...]], ...]
    edges: Tuple[Tuple[int, int], ...] = ()
    elements: Tuple[str, ...] = ()
    groups: Tuple[GroupRecipe, ...] = ()

    # -- building ----------------------------------------------------------

    def group_structure(self) -> Optional[GroupStructure]:
        if not self.groups:
            return None
        universe = self.elements or tuple(
            dict.fromkeys(el for el, _, _, _ in self.events))
        return GroupStructure(universe, [g.to_decl() for g in self.groups])

    def build(self, order: Optional[Sequence[int]] = None) -> Computation:
        """Freeze into a :class:`Computation`.

        ``order`` optionally permutes insertion order.  Only
        permutations that preserve the *relative* order of events at
        each element reproduce the same partial order (occurrence
        numbers are assigned per element in insertion order); see
        :meth:`element_preserving_shuffle`.
        """
        builder = ComputationBuilder(self.group_structure())
        sequence = range(len(self.events)) if order is None else order
        built: Dict[int, object] = {}
        for i in sequence:
            element, event_class, params, threads = self.events[i]
            built[i] = builder.add_event(
                element, event_class, dict(params), threads)
        for i, j in self.edges:
            builder.add_enable(built[i], built[j])
        return builder.freeze()

    def element_preserving_shuffle(self, rng: random.Random) -> List[int]:
        """A random insertion order preserving each element's subsequence.

        Implemented as a random interleaving of the per-element queues,
        so every element's events keep their relative order (and hence
        their occurrence numbers) while cross-element insertion order is
        scrambled.
        """
        queues: Dict[str, List[int]] = {}
        for i, (element, _, _, _) in enumerate(self.events):
            queues.setdefault(element, []).append(i)
        pending = [q for q in queues.values() if q]
        order: List[int] = []
        while pending:
            q = rng.choice(pending)
            order.append(q.pop(0))
            pending = [q for q in pending if q]
        return order

    # -- shrinking ---------------------------------------------------------

    def without_edge(self, k: int) -> "ComputationRecipe":
        return replace(
            self, edges=self.edges[:k] + self.edges[k + 1:])

    def without_event(self, i: int) -> "ComputationRecipe":
        """Drop event ``i``, its incident edges, and reindex."""
        events = self.events[:i] + self.events[i + 1:]
        edges = tuple(
            (a - (a > i), b - (b > i))
            for a, b in self.edges
            if a != i and b != i
        )
        return replace(self, events=events, edges=edges)

    def shrink_candidates(self) -> Iterator["ComputationRecipe"]:
        """One-step reductions, largest deletions first."""
        for i in reversed(range(len(self.events))):
            yield self.without_event(i)
        for k in reversed(range(len(self.edges))):
            yield self.without_edge(k)

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Random computations
# ---------------------------------------------------------------------------


def _random_groups(
    rng: random.Random, elements: Tuple[str, ...]
) -> Tuple[GroupRecipe, ...]:
    """A small random scope structure over ``elements``.

    Groups draw disjoint member sets (the paper's containment is a
    forest over elements at this depth) and occasionally designate a
    member's event class as a port.
    """
    available = list(elements)
    rng.shuffle(available)
    groups: List[GroupRecipe] = []
    n_groups = rng.randint(1, max(1, len(elements) // 2))
    for g in range(n_groups):
        if not available:
            break
        size = rng.randint(1, min(2, len(available)))
        members = tuple(sorted(available[:size]))
        del available[:size]
        ports: Tuple[Tuple[str, str], ...] = ()
        if rng.random() < 0.5:
            port_el = rng.choice(members)
            port_cls = rng.choice(sorted(EVENT_CLASSES))
            ports = ((port_el, port_cls),)
        groups.append(GroupRecipe(f"G{g}", members, ports))
    return tuple(groups)


def random_computation(
    rng: random.Random,
    max_elements: int = 4,
    max_events: int = 10,
    edge_density: float = 0.3,
    with_groups: Optional[bool] = None,
    element_prefix: str = "",
) -> ComputationRecipe:
    """A seeded random well-formed computation recipe.

    ``with_groups=None`` flips a coin; ``element_prefix`` namespaces the
    elements (used to make recipes composable with guaranteed-disjoint
    element sets).
    """
    n_elements = rng.randint(1, max_elements)
    elements = tuple(
        element_prefix + name for name in _ELEMENT_NAMES[:n_elements])
    use_groups = rng.random() < 0.4 if with_groups is None else with_groups
    groups = _random_groups(rng, elements) if use_groups else ()

    n_events = rng.randint(1, max_events)
    events = []
    for _ in range(n_events):
        element = rng.choice(elements)
        event_class = rng.choice(sorted(EVENT_CLASSES))
        params = tuple(
            (p, rng.randrange(10)) for p in EVENT_CLASSES[event_class])
        events.append((element, event_class, params, ()))

    recipe = ComputationRecipe(
        events=tuple(events), elements=elements, groups=groups)
    structure = recipe.group_structure()
    edges = []
    for j in range(n_events):
        for i in range(j):
            if rng.random() >= edge_density:
                continue
            src, dst = events[i][0], events[j][0]
            if structure is not None and not structure.may_enable(
                    src, dst, events[j][1]):
                continue
            edges.append((i, j))
    return replace(recipe, edges=tuple(edges))


# ---------------------------------------------------------------------------
# Random restriction formulas
# ---------------------------------------------------------------------------


def random_formula(
    rng: random.Random,
    computation: Computation,
    max_depth: int = 3,
) -> Formula:
    """A random *immediate* formula over the computation's vocabulary.

    Domains are drawn from the (element, class) pairs actually present;
    atoms only reference bound variables, so the result is always
    closed.  The formula is immediate (no temporal operators) -- callers
    wanting a temporal restriction wrap it in ``Henceforth`` themselves,
    which keeps it inside the fragment where the lattice and exact
    checkers provably agree.
    """
    pairs = sorted({(ev.element, ev.event_class) for ev in computation.events})
    if not pairs:
        return TrueF()
    classes = sorted({cls for _, cls in pairs})

    def a_domain() -> str:
        if rng.random() < 0.5:
            el, cls = rng.choice(pairs)
            return f"{el}.{cls}"
        return rng.choice(classes)

    def atom(bound: List[str]) -> Formula:
        if not bound:
            return TrueF()
        unary = rng.random() < 0.4 or len(bound) == 1
        if unary:
            v = rng.choice(bound)
            if rng.random() < 0.5:
                return Occurred(v)
            el = rng.choice(pairs)[0]
            return AtElement(v, el)
        a, b = rng.sample(bound, 2)
        kind = rng.randrange(4)
        if kind == 0:
            return Enables(a, b)
        if kind == 1:
            return ElementPrecedes(a, b)
        if kind == 2:
            return TemporallyPrecedes(a, b)
        return Concurrent(a, b)

    def gen(depth: int, bound: List[str]) -> Formula:
        if depth <= 0:
            return atom(bound)
        # bias towards introducing a binder while nothing is bound yet
        kind = rng.randrange(6) if bound else rng.randrange(2)
        if kind < 2:  # quantifier
            var = f"v{len(bound)}"
            quant = ForAll if rng.random() < 0.5 else Exists
            return quant(var, a_domain(), gen(depth - 1, bound + [var]))
        if kind == 2:
            return Not(gen(depth - 1, bound))
        if kind == 3:
            return And((gen(depth - 1, bound), gen(depth - 1, bound)))
        if kind == 4:
            return Or((gen(depth - 1, bound), gen(depth - 1, bound)))
        return Implies(gen(depth - 1, bound), gen(depth - 1, bound))

    return gen(rng.randint(1, max_depth), [])


# ---------------------------------------------------------------------------
# Random choice sequences
# ---------------------------------------------------------------------------


def random_choices(
    rng: random.Random, program, max_steps: int = 200
) -> Tuple[int, ...]:
    """A random maximal choice sequence for a scheduler program.

    Drives ``program`` like :func:`repro.sim.run_random` but from the
    caller's RNG, returning only the choices -- the replay currency of
    the language interpreters.
    """
    state = program.initial_state()
    choices: List[int] = []
    while len(choices) < max_steps:
        actions = state.enabled()
        if not actions:
            break
        choices.append(rng.randrange(len(actions)))
        state.step(actions[choices[-1]])
    return tuple(choices)
