"""The fuzz loop: iterate oracles, generate, check, shrink, report.

Iterations are distributed round-robin over the selected oracles, and
iteration ``i`` of oracle ``o`` is seeded with the string token
``"{seed}:{o}:{i}"`` -- string seeding of ``random.Random`` is
documented to be stable across processes and interpreter runs (it
hashes with SHA-512, not the per-process ``hash``), so every artifact
is reproducible from the command line alone and the printed token.

On the first failure of an oracle the loop shrinks it, renders a
runnable pytest repro snippet, and stops scheduling that oracle (one
minimal counterexample per oracle per run is the useful unit of
output; hammering a broken law wastes the iteration budget).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine.stats import PhaseTimer, ProgressFn, guard_progress
from ..obs.trace import NULL_TRACER
from .oracles import Oracle, make_oracles
from .shrink import artifact_size, repro_snippet, shrink_failure


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzz run (defaults match the CLI)."""

    seed: int = 0
    iterations: int = 200
    #: oracle names to run; None = all, in canonical order
    oracles: Optional[Tuple[str, ...]] = None
    #: worker processes for the engine-differential oracle
    jobs: int = 2
    shrink: bool = True


@dataclass
class FuzzFailure:
    """One oracle failure, shrunk and rendered for replay."""

    oracle: str
    seed_token: str
    message: str
    artifact: object
    shrunk_artifact: object
    shrunk_message: str
    snippet: str

    def describe(self) -> str:
        return (
            f"oracle {self.oracle!r} failed (seed token {self.seed_token!r})\n"
            f"  original : {artifact_size(self.artifact)} events -- "
            f"{self.message}\n"
            f"  shrunk   : {artifact_size(self.shrunk_artifact)} events -- "
            f"{self.shrunk_message}"
        )


@dataclass
class FuzzStats:
    """Counters for one fuzz run, ``EngineStats``-style."""

    iterations: int = 0
    per_oracle: Dict[str, int] = field(default_factory=dict)
    failures: int = 0
    shrink_steps: int = 0
    #: oracle name -> accumulated seconds (PhaseTimer-compatible)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        shrink = (f", {self.shrink_steps} shrink step(s)"
                  if self.shrink_steps else "")
        lines = [f"fuzz: {self.iterations} iterations, "
                 f"{self.failures} failing oracle(s){shrink}"]
        for name in sorted(self.per_oracle):
            seconds = self.phase_seconds.get(name, 0.0)
            count = self.per_oracle[name]
            rate = count / seconds if seconds > 0 else float("inf")
            lines.append(
                f"  {name:20s} {count:5d} iterations  "
                f"{seconds:7.2f}s  ({rate:8.1f}/s)")
        total = sum(self.phase_seconds.values())
        if total > 0:
            lines.append(f"  {'total':20s} {self.iterations:5d} iterations  "
                         f"{total:7.2f}s")
        return "\n".join(lines)


def seed_token(seed: int, oracle: str, iteration: int) -> str:
    """The reproducible per-artifact seed; printed on failure."""
    return f"{seed}:{oracle}:{iteration}"


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[ProgressFn] = None,
    tracer: Optional[object] = None,
    metrics: Optional[object] = None,
) -> Tuple[List[FuzzFailure], FuzzStats]:
    """Run the fuzz loop; returns (failures, stats).

    An empty failure list means every oracle held over every generated
    artifact.  ``progress`` hooks are guarded (a raising hook is warned
    about once and disabled).  ``tracer`` records one ``fuzz-iteration``
    span per iteration and one ``shrink`` span per shrink session;
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives
    ``fuzz.iterations`` / ``fuzz.failures`` / ``fuzz.shrink_steps``
    counters, labelled per oracle.
    """
    progress = guard_progress(progress)
    tracer = tracer or NULL_TRACER
    registry = make_oracles(jobs=config.jobs)
    if config.oracles is None:
        selected: List[Oracle] = list(registry.values())
    else:
        unknown = [n for n in config.oracles if n not in registry]
        if unknown:
            raise ValueError(
                f"unknown oracle(s) {unknown}; known: {sorted(registry)}")
        selected = [registry[n] for n in config.oracles]

    stats = FuzzStats()
    failures: List[FuzzFailure] = []
    dead: set = set()
    for i in range(config.iterations):
        oracle = selected[i % len(selected)]
        if oracle.name in dead:
            continue
        token = seed_token(config.seed, oracle.name, i)
        rng = random.Random(token)
        with PhaseTimer(stats, oracle.name, progress):
            with tracer.span("fuzz-iteration",
                             attrs={"oracle": oracle.name, "token": token}):
                artifact = oracle.generate(rng)
                message = oracle.check(artifact)
        stats.iterations += 1
        stats.per_oracle[oracle.name] = (
            stats.per_oracle.get(oracle.name, 0) + 1)
        if metrics is not None:
            metrics.inc("fuzz.iterations", oracle=oracle.name)
        if message is None:
            continue
        stats.failures += 1
        dead.add(oracle.name)
        if metrics is not None:
            metrics.inc("fuzz.failures", oracle=oracle.name)
        if config.shrink and oracle.shrink is not None:

            def count_step(_candidate: object) -> None:
                stats.shrink_steps += 1
                if metrics is not None:
                    metrics.inc("fuzz.shrink_steps", oracle=oracle.name)

            with PhaseTimer(stats, f"{oracle.name}:shrink", progress):
                with tracer.span("shrink",
                                 attrs={"oracle": oracle.name}) as span:
                    steps_before = stats.shrink_steps
                    shrunk, shrunk_message = shrink_failure(
                        artifact, oracle.check, oracle.shrink,
                        on_reduce=count_step)
                    span.set_meta(
                        steps=stats.shrink_steps - steps_before,
                        events=artifact_size(shrunk))
        else:
            shrunk, shrunk_message = artifact, message
        failures.append(FuzzFailure(
            oracle=oracle.name,
            seed_token=token,
            message=message,
            artifact=artifact,
            shrunk_artifact=shrunk,
            shrunk_message=shrunk_message,
            snippet=repro_snippet(oracle.name, shrunk, shrunk_message),
        ))
    return failures, stats
