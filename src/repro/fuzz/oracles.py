"""Metamorphic and differential oracles.

Each oracle pairs a generator (``random.Random`` -> artifact) with a
pure checker (artifact -> failure message or ``None``).  Checkers are
deterministic functions of the artifact alone -- that is what lets the
shrinker re-run them on reduced artifacts and lets a repro snippet
re-run them years later from nothing but ``repr(artifact)``.

The law functions (``check_*``) are public and separately importable:
the killed-mutant tests call them directly on deliberately broken
inputs (a tampered temporal relation, a non-down-closed history, a
fingerprint that ignores edges, a program that emits different edges in
forked workers) to prove each oracle can actually fail.  Where a law
exercises a replaceable implementation (fingerprinting, composition,
projection), the implementation is an injectable parameter so mutants
are seeded without monkeypatching.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.checker import check_restriction
from ..core.compose import parallel_compose, restrict_events, sequential_compose
from ..core.computation import Computation
from ..core.formula import Formula, Henceforth, Restriction
from ..core.history import History, all_histories, maximal_history_sequences
from ..engine import EngineConfig, run_verification
from ..engine.por import AmpleSelector
from ..sim.scheduler import explore, replay_prefix, run_random
from ..verify.consistency import (
    OBJECT_TYPES,
    check_history_agreement,
    random_object_history,
)
from ..verify.correspondence import Correspondence, SignificantEvents
from ..verify.projection import project
from .generators import (
    ComputationRecipe,
    random_computation,
    random_formula,
)
from .programs import (
    FuzzProgram,
    FuzzProgramSpec,
    dfa_problem_spec,
    fuzz_correspondence,
    fuzz_problem_spec,
    random_program_spec,
)

# ---------------------------------------------------------------------------
# Law functions
# ---------------------------------------------------------------------------


def check_order_laws(comp: Computation) -> Optional[str]:
    """Strict-partial-order laws of ``⇒`` and the Relation algebra.

    ``⇒`` must be an irreflexive transitive (hence acyclic) order that
    contains ``⊳`` and ``⇒ₑ``; closure must be idempotent, reduction
    must round-trip through closure, topological order must linearise
    it, and concurrency must be the symmetric irreflexive complement.
    """
    t = comp.temporal_relation
    if not t.is_strict_partial_order():
        return "temporal relation is not a strict partial order"
    if t.is_acyclic() != (t.find_cycle() is None):
        return "is_acyclic() disagrees with find_cycle()"
    pairs = set(t.pairs())
    if set(t.transitive_closure().pairs()) != pairs:
        return "transitive closure is not idempotent on ⇒"
    reduction = t.transitive_reduction()
    if set(reduction.transitive_closure().pairs()) != pairs:
        return "transitive reduction does not round-trip through closure"
    position = {n: i for i, n in enumerate(t.topological_order())}
    if any(position[a] >= position[b] for a, b in pairs):
        return "topological_order() violates ⇒"
    for a, b in comp.enable_relation.pairs():
        if not t.holds(a, b):
            return f"⊳ pair {a} ⊳ {b} missing from ⇒"
    for element in comp.elements():
        seq = comp.events_at(element)
        for prev, nxt in zip(seq, seq[1:]):
            if not t.holds(prev.eid, nxt.eid):
                return f"⇒ₑ cover {prev.eid} ⇒ₑ {nxt.eid} missing from ⇒"
    ids = [ev.eid for ev in comp.events]
    for a in ids:
        if comp.concurrent(a, a):
            return f"concurrent({a}, {a}) should be false"
        down = t.down_set([a])
        if not t.is_down_closed(down):
            return f"down_set({a}) is not downward closed"
        for b in ids:
            if comp.concurrent(a, b) != comp.concurrent(b, a):
                return f"concurrency is not symmetric on ({a}, {b})"
            expected = a != b and not t.holds(a, b) and not t.holds(b, a)
            if comp.concurrent(a, b) != expected:
                return f"concurrent({a}, {b}) disagrees with ⇒"
    for n in t.minimal_nodes():
        if any(t.holds(m, n) for m in ids):
            return f"minimal node {n} has a predecessor"
    for n in t.maximal_nodes():
        if any(t.holds(n, m) for m in ids):
            return f"maximal node {n} has a successor"
    return None


def check_history_laws(
    comp: Computation,
    histories: Optional[Sequence[History]] = None,
    sequences: Optional[Sequence] = None,
    history_cap: int = 5000,
    vhs_cap: int = 2000,
) -> Optional[str]:
    """History-lattice laws (Section 7).

    Histories are exactly the downward-closed sets; they form a lattice
    (closed under union and intersection, with ⊥ = ∅ and ⊤ = all
    events); frontiers are maximal inside their history; and in a valid
    history sequence every simultaneous step is an antichain of
    pairwise (potentially) concurrent events.

    ``histories``/``sequences`` are injectable so mutant tests can feed
    corrupted collections through the same laws.
    """
    t = comp.temporal_relation
    if histories is None:
        histories = all_histories(comp, cap=history_cap)
    sets = {h.events for h in histories}
    for h in histories:
        if not t.is_down_closed(h.events):
            return f"history {sorted(map(str, h.events))} is not down-closed"
        for f in h.frontier():
            if any(t.holds(f, other) for other in h.events):
                return f"frontier event {f} has a successor inside its history"
        for e in h.addable():
            if e in h.events:
                return f"addable event {e} already occurred"
            if not (t.down_set([e]) - {e} <= h.events):
                return f"addable event {e} has an unmet predecessor"
    if frozenset() not in sets:
        return "empty history missing from the lattice"
    if frozenset(ev.eid for ev in comp.events) not in sets:
        return "complete history missing from the lattice"
    for x in sets:
        for y in sets:
            if x | y not in sets:
                return "history lattice is not closed under union"
            if x & y not in sets:
                return "history lattice is not closed under intersection"
    if sequences is None:
        sequences = list(maximal_history_sequences(
            comp, cap=vhs_cap, max_step=None))
    full = frozenset(ev.eid for ev in comp.events)
    for seq in sequences:
        steps = list(seq)
        for prev, nxt in zip(steps, steps[1:]):
            if not prev.events <= nxt.events:
                return "history sequence is not monotone"
            added = sorted(nxt.events - prev.events)
            if not t.is_antichain(added):
                return "simultaneous step is not an antichain of ⇒"
            for i, a in enumerate(added):
                for b in added[i + 1:]:
                    if not comp.concurrent(a, b):
                        return (f"simultaneous events {a}, {b} are not "
                                "pairwise concurrent")
        if steps and steps[-1].events != full:
            return "maximal history sequence does not end at ⊤"
    return None


def _stable_fingerprint(comp: Computation) -> str:
    return comp.stable_fingerprint()


def check_fingerprint_laws(
    recipe: ComputationRecipe,
    shuffles: int = 4,
    fingerprint: Callable[[Computation], str] = _stable_fingerprint,
) -> Optional[str]:
    """Relabeling-invariance and sensitivity of computation fingerprints.

    Invariance: any insertion order that preserves each element's
    subsequence builds the *same* partial order, so the fingerprint must
    not change.  Sensitivity: deleting an enable edge or perturbing a
    parameter changes the partial order, so the fingerprint must change.
    A fingerprint failing the first law breaks dedupe soundness (runs
    wrongly counted distinct); one failing the second silently merges
    different computations -- both are exactly the bugs the engine's
    dedupe layer cannot survive.
    """
    base = fingerprint(recipe.build())
    rng = random.Random(0xF1A9)
    for _ in range(shuffles):
        order = recipe.element_preserving_shuffle(rng)
        got = fingerprint(recipe.build(order))
        if got != base:
            return (f"fingerprint not invariant under insertion order "
                    f"{order}")
    for k in range(len(recipe.edges)):
        if fingerprint(recipe.without_edge(k).build()) == base:
            return f"fingerprint insensitive to dropping edge {recipe.edges[k]}"
    for i, (element, event_class, params, threads) in enumerate(recipe.events):
        if not params:
            continue
        name, value = params[0]
        tweaked = ((name, value + 1),) + params[1:]
        mutated = replace(recipe, events=(
            recipe.events[:i]
            + ((element, event_class, tweaked, threads),)
            + recipe.events[i + 1:]))
        if fingerprint(mutated.build()) == base:
            return f"fingerprint insensitive to changing a parameter of event {i}"
        break  # one parameter perturbation suffices
    return None


def identity_correspondence(comp: Computation) -> Correspondence:
    """Every event significant, mapped to itself, parameters preserved."""
    pairs = sorted({(ev.element, ev.event_class) for ev in comp.events})
    return Correspondence(rules=tuple(
        SignificantEvents(
            name=f"id-{el}-{cls}", element=el, event_class=cls,
            target_element=el, target_class=cls,
            params=lambda ev: dict(ev.param_dict()))
        for el, cls in pairs
    ))


def check_compose_laws(
    a_recipe: ComputationRecipe,
    b_recipe: ComputationRecipe,
    compose_parallel: Callable[[Computation, Computation], Computation] = parallel_compose,
    compose_sequential: Callable[[Computation, Computation], Computation] = sequential_compose,
    projector: Callable[[Computation, Correspondence], Computation] = project,
) -> Optional[str]:
    """Composition and projection round-trips.

    * ``parallel_compose``: cross pairs are concurrent, and restricting
      back to either side reproduces it exactly (fingerprint equality).
    * ``sequential_compose``: every ``a`` event temporally precedes
      every ``b`` event (the barrier law).
    * ``project`` under the identity correspondence is the identity.

    The composition/projection implementations are injectable for
    mutant seeding.
    """
    a, b = a_recipe.build(), b_recipe.build()
    a_ids = [ev.eid for ev in a.events]
    b_ids = [ev.eid for ev in b.events]

    par = compose_parallel(a, b)
    for x in a_ids:
        for y in b_ids:
            if not par.concurrent(x, y):
                return f"parallel_compose ordered cross pair ({x}, {y})"
    if restrict_events(par, a_ids).stable_fingerprint() != a.stable_fingerprint():
        return "restrict_events(parallel_compose(a, b), a) != a"
    if restrict_events(par, b_ids).stable_fingerprint() != b.stable_fingerprint():
        return "restrict_events(parallel_compose(a, b), b) != b"

    if a_ids and b_ids:
        seq = compose_sequential(a, b)
        for x in a_ids:
            for y in b_ids:
                if not seq.temporally_precedes(x, y):
                    return (f"sequential_compose left {x} unordered before "
                            f"{y}")

    if a_ids:
        projected = projector(a, identity_correspondence(a))
        if projected.stable_fingerprint() != a.stable_fingerprint():
            return "identity projection changed the computation"
    return None


def check_modes_agree(
    comp: Computation,
    restriction: Restriction,
    vhs_cap: int = 50_000,
) -> Optional[str]:
    """Differential oracle: lattice vs exact temporal checking.

    For ``□p`` with an immediate ``p`` the memoised lattice evaluator
    and exhaustive vhs enumeration are provably equivalent (every
    reachable history lies on some maximal sequence); any divergence is
    an implementation bug in one of them.
    """
    lattice = check_restriction(comp, restriction, temporal_mode="lattice")
    exact = check_restriction(comp, restriction, temporal_mode="exact",
                              vhs_cap=vhs_cap)
    if lattice.holds != exact.holds:
        return (f"checker modes disagree on {restriction.name!r}: "
                f"lattice={lattice.holds} exact={exact.holds} "
                f"({restriction.formula.describe()})")
    return None


def check_compiled_agrees(
    comp: Computation,
    restriction: Restriction,
    vhs_cap: int = 50_000,
    compiled_check=None,
) -> Optional[str]:
    """Differential oracle: compiled vs lattice vs exact checking.

    The compiled bitmask checker (:mod:`repro.core.compile`) must
    reproduce the interpreter's :class:`RestrictionOutcome` *exactly*
    (verdict and detail string) on every formula it compiles, and both
    must agree with exhaustive vhs enumeration on the ``□p`` shapes the
    artifact generator produces.  ``compiled_check`` is injectable for
    mutant seeding (a deliberately broken compiled evaluator must be
    caught by this oracle).
    """
    impl = compiled_check or (lambda c, r: check_restriction(
        c, r, temporal_mode="compiled"))
    lattice = check_restriction(comp, restriction, temporal_mode="lattice")
    compiled = impl(comp, restriction)
    if (lattice.holds, lattice.detail) != (compiled.holds, compiled.detail):
        return (f"compiled checker disagrees with interpreter on "
                f"{restriction.name!r}: compiled=({compiled.holds}, "
                f"{compiled.detail!r}) lattice=({lattice.holds}, "
                f"{lattice.detail!r}) ({restriction.formula.describe()})")
    exact = check_restriction(comp, restriction, temporal_mode="exact",
                              vhs_cap=vhs_cap)
    if compiled.holds != exact.holds:
        return (f"compiled checker disagrees with exact enumeration on "
                f"{restriction.name!r}: compiled={compiled.holds} "
                f"exact={exact.holds} ({restriction.formula.describe()})")
    return None


def check_slice_agrees(
    comp: Computation,
    restriction: Restriction,
    vhs_cap: int = 50_000,
    slice_check=None,
) -> Optional[str]:
    """Differential oracle: slice-routed vs lattice vs exact checking.

    Computation slicing (:mod:`repro.core.slice`) decides regular
    temporal restrictions on the join-closed sublattice of satisfying
    cuts instead of walking the history lattice; its verdict *and
    detail string* must equal the interpreter's on every shape it
    accepts (non-regular shapes fall back to the walk, which agrees
    trivially), and both must agree with exhaustive vhs enumeration.
    ``slice_check`` is injectable for mutant seeding (a deliberately
    broken slice evaluator must be caught by this oracle).
    """
    impl = slice_check or (lambda c, r: check_restriction(
        c, r, temporal_mode="lattice", use_slice=True))
    lattice = check_restriction(comp, restriction, temporal_mode="lattice")
    sliced = impl(comp, restriction)
    if (lattice.holds, lattice.detail) != (sliced.holds, sliced.detail):
        return (f"slice checker disagrees with interpreter on "
                f"{restriction.name!r}: slice=({sliced.holds}, "
                f"{sliced.detail!r}) lattice=({lattice.holds}, "
                f"{lattice.detail!r}) ({restriction.formula.describe()})")
    exact = check_restriction(comp, restriction, temporal_mode="exact",
                              vhs_cap=vhs_cap)
    if sliced.holds != exact.holds:
        return (f"slice checker disagrees with exact enumeration on "
                f"{restriction.name!r}: slice={sliced.holds} "
                f"exact={exact.holds} ({restriction.formula.describe()})")
    return None


def check_dfa_agrees(
    spec: FuzzProgramSpec,
    max_steps: int = 64,
    max_runs: int = 100_000,
    monitor_factory=None,
) -> Optional[str]:
    """The restriction-automata soundness contract.

    The :class:`~repro.core.automata.AutomatonMonitor` threads through
    exploration as a pure observer, so three laws must hold on every
    program: (1) the monitored exploration's run census -- choices,
    fingerprints, deadlock/truncation flags -- is byte-identical to the
    unmonitored one's; (2) every verdict the monitor decides on a
    *prefix* equals the ground-truth lattice verdict on the completed
    computation (box-reject prefixes stay violating in every
    completion, dia-accept prefixes stay satisfied); and (3) routing
    the checker through the automata (``use_dfa`` plus the recorded
    early verdicts) reproduces the plain checker's per-restriction
    verdicts exactly.

    Runs over :func:`dfa_problem_spec` -- the fuzz spec extended with a
    box-reject budget restriction and a dia-accept liveness one, so
    both automaton sinks actually fire across seeds.
    ``monitor_factory`` is injectable for mutant seeding (a monitor
    that mis-decides or perturbs exploration must be caught here).
    """
    from ..core.automata import AutomatonMonitor, automata_plan_for
    from ..core.checker import check_computation

    program = FuzzProgram(spec)
    problem_spec = dfa_problem_spec(spec)
    plan = automata_plan_for(problem_spec)
    make = monitor_factory or (
        lambda: AutomatonMonitor(plan, problem_spec))

    plain = list(explore(program, max_steps=max_steps, max_runs=max_runs))
    monitored = list(explore(program, max_steps=max_steps,
                             max_runs=max_runs, dfa=make()))

    def census(runs):
        return [(r.choices, r.computation.stable_fingerprint(),
                 r.deadlocked, r.truncated) for r in runs]

    if census(plain) != census(monitored):
        return (f"the monitor perturbed exploration: {len(plain)} plain "
                f"run(s) vs {len(monitored)} monitored")

    verdicts_by_fp: Dict[str, Tuple[Dict[str, bool], Dict[str, bool]]] = {}
    for run in monitored:
        if run.truncated:
            continue
        comp = run.computation
        fp = comp.stable_fingerprint()
        cached = verdicts_by_fp.get(fp)
        if cached is None:
            truth = {o.name: o.holds for o in check_computation(
                comp, problem_spec, temporal_mode="lattice").outcomes}
            base = {o.name: o.holds for o in check_computation(
                comp, problem_spec).outcomes}
            cached = verdicts_by_fp[fp] = (truth, base)
        truth, base = cached
        for name, holds in run.decided:
            if truth.get(name) != holds:
                return (f"monitor decided {name!r}={holds} on a prefix of "
                        f"run {run.choices} but the completed computation "
                        f"says {truth.get(name)}")
        routed = {o.name: o.holds for o in check_computation(
            comp, problem_spec, use_dfa=True,
            decided=dict(run.decided)).outcomes}
        if routed != base:
            return (f"dfa-routed checker disagrees on run {run.choices}: "
                    f"{routed} with the automata vs {base} without")
    return None


def check_replay_determinism(
    program,
    seed: int,
    max_steps: int = 400,
) -> Optional[str]:
    """Replay contract of the scheduler and interpreters.

    The same seed must reproduce the same choices and the same
    computation; replaying the recorded choices through
    ``replay_prefix`` must land on the same computation.  Programs
    violating this (enabled-order depending on ambient state) break
    every downstream guarantee -- sampling provenance, engine sharding,
    and cache keying alike.
    """
    first = run_random(program, seed, max_steps=max_steps)
    second = run_random(program, seed, max_steps=max_steps)
    if first.choices != second.choices:
        return (f"run_random(seed={seed}) is not reproducible: "
                f"{first.choices} vs {second.choices}")
    fp1 = first.computation.stable_fingerprint()
    if fp1 != second.computation.stable_fingerprint():
        return f"same choices, different computations (seed={seed})"
    replayed = replay_prefix(program, first.choices)
    if replayed.computation().stable_fingerprint() != fp1:
        return f"replay_prefix diverged from the recorded run (seed={seed})"
    return None


def _diff_signatures(name_a: str, sig_a: Tuple, name_b: str, sig_b: Tuple) -> str:
    fields = ("problem", "exhaustive", "runs", "deadlocks", "truncated",
              "distinct", "verdicts", "program-spec-failures",
              "legality-failures")
    for field_name, x, y in zip(fields, sig_a, sig_b):
        if x != y:
            return (f"{name_a} != {name_b}: first difference in "
                    f"{field_name}: {x!r} vs {y!r}")
    return f"{name_a} != {name_b}"


def check_engine_agreement(
    spec: FuzzProgramSpec,
    jobs: int = 2,
    max_steps: int = 64,
    max_runs: int = 4096,
) -> Optional[str]:
    """The engine determinism contract: serial == parallel == cached.

    Verifies the same program through all three pipelines and compares
    :meth:`VerificationReport.signature` pairwise.  Any divergence --
    different run census, different verdicts, different failing-run
    lists -- is a real engine bug (or, for seeded mutants, a program
    whose computations depend on which process built them).

    Runs with ``por=False``: partial-order reduction can collapse a
    tiny program's exploration to a single branch-free shard, in which
    case the pool never forks and fork-dependent nondeterminism would
    be invisible.  POR-vs-full agreement has its own oracle,
    :func:`check_por_agrees`.
    """
    program = FuzzProgram(spec)
    problem_spec = fuzz_problem_spec(spec)
    correspondence = fuzz_correspondence(spec)

    def signature(**overrides) -> Tuple:
        config = EngineConfig(max_steps=max_steps, max_runs=max_runs,
                              sample=50, por=False, **overrides)
        report, _stats = run_verification(
            program, problem_spec, correspondence, config=config)
        return report.signature()

    serial = signature(jobs=1)
    parallel = signature(jobs=jobs)
    if serial != parallel:
        return _diff_signatures("serial", serial,
                                f"parallel(jobs={jobs})", parallel)
    with tempfile.TemporaryDirectory(prefix="gem-fuzz-cache-") as cache_dir:
        cold = signature(jobs=1, cache_dir=cache_dir)
        warm = signature(jobs=1, cache_dir=cache_dir)
    if serial != cold:
        return _diff_signatures("serial", serial, "cold-cache", cold)
    if cold != warm:
        return _diff_signatures("cold-cache", cold, "warm-cache", warm)
    return None


def _run_signature(run) -> Tuple:
    return (run.computation.stable_fingerprint(), run.deadlocked,
            run.truncated)


def check_por_program_agrees(
    program,
    max_steps: int = 64,
    max_runs: int = 100_000,
    selector_factory: Optional[Callable[[], object]] = None,
) -> Optional[str]:
    """Exploration-level POR laws, for *any* scheduler program.

    The reduced exploration must produce exactly the full exploration's
    set of computation classes (stable fingerprint + deadlock +
    truncation outcome), never more runs than the full walk, and every
    reduced run's choice sequence must be a run of the full DFS.
    ``selector_factory`` builds the selector under test (default:
    :class:`repro.engine.por.AmpleSelector`); injecting an unsound one
    is how the killed-mutant tests prove these laws have teeth.
    """
    make = selector_factory or AmpleSelector
    full = list(explore(program, max_steps=max_steps, max_runs=max_runs))
    reduced = list(explore(program, max_steps=max_steps, max_runs=max_runs,
                           por=make()))
    if len(reduced) > len(full):
        return (f"por produced more runs ({len(reduced)}) than full "
                f"exploration ({len(full)})")
    full_sigs = {_run_signature(r) for r in full}
    red_sigs = {_run_signature(r) for r in reduced}
    missing = full_sigs - red_sigs
    if missing:
        fp = sorted(missing)[0][0]
        return (f"por dropped {len(missing)} of {len(full_sigs)} computation "
                f"classes (e.g. fingerprint {fp[:16]})")
    extra = red_sigs - full_sigs
    if extra:
        return (f"por produced {len(extra)} computation classes the full "
                "exploration lacks")
    full_choices = {r.choices for r in full}
    for r in reduced:
        if r.choices not in full_choices:
            return f"por run {r.choices} is not a run of the full exploration"
    return None


def check_por_agrees(
    spec: FuzzProgramSpec,
    max_steps: int = 64,
    max_runs: int = 100_000,
    selector_factory: Optional[Callable[[], object]] = None,
) -> Optional[str]:
    """The POR soundness contract: reduced == full, up to commutation.

    Ample-set partial-order reduction (:mod:`repro.engine.por`) prunes
    interleavings whose computations it proves equal to one it keeps.
    Verdicts are pure functions of the computation partial order, so
    the contract is: the reduced exploration must produce *exactly* the
    full exploration's set of computation classes -- same stable
    fingerprints, same deadlock/truncation outcomes -- with every
    reduced run also being a run of the full DFS.  On top of that, the
    engine's reports with and without reduction must agree on the
    overall verdict, every per-restriction verdict, the distinct
    computation census, and deadlock detection; and every failure
    witness recorded under reduction must replay to a computation the
    full exploration also reaches.

    ``selector_factory`` is the injectable implementation: the
    killed-mutant tests pass a deliberately unsound selector (one that
    drops a dependent action from the ample set) to prove this oracle
    can actually fail.
    """
    program = FuzzProgram(spec)
    message = check_por_program_agrees(
        program, max_steps=max_steps, max_runs=max_runs,
        selector_factory=selector_factory)
    if message is not None or selector_factory is not None:
        # with a factory injected only the exploration-level laws run:
        # the engine builds its own selectors internally
        return message
    full = list(explore(program, max_steps=max_steps, max_runs=max_runs))
    full_sigs = {_run_signature(r) for r in full}

    problem_spec = fuzz_problem_spec(spec)
    correspondence = fuzz_correspondence(spec)

    def report(por: bool):
        config = EngineConfig(max_steps=max_steps, max_runs=max_runs,
                              sample=50, por=por)
        rep, _stats = run_verification(
            program, problem_spec, correspondence, config=config)
        return rep

    on, off = report(True), report(False)
    if on.ok != off.ok:
        return f"verdict parity broken: ok={on.ok} with por, {off.ok} without"
    if on.distinct_computations != off.distinct_computations:
        return (f"distinct computations differ: {on.distinct_computations} "
                f"with por, {off.distinct_computations} without")
    verdicts_on = sorted((n, v.holds) for n, v in on.verdicts.items())
    verdicts_off = sorted((n, v.holds) for n, v in off.verdicts.items())
    if verdicts_on != verdicts_off:
        return (f"per-restriction verdicts differ: {verdicts_on} with por, "
                f"{verdicts_off} without")
    if (on.deadlocks > 0) != (off.deadlocks > 0):
        return (f"deadlock detection differs: {on.deadlocks} with por, "
                f"{off.deadlocks} without")
    known = {s[0] for s in full_sigs}
    for idx, choices in on.failing_run_choices.items():
        comp = replay_prefix(program, choices).computation()
        if comp.stable_fingerprint() not in known:
            return (f"por witness for run {idx} replays to a computation the "
                    "full exploration never reaches")
    return None


def check_objects_agree(
    artifact: "ObjectsArtifact",
    linearizable_impl: Optional[Callable] = None,
    sc_impl: Optional[Callable] = None,
) -> Optional[str]:
    """The consistency-checker contract on one object history.

    For a seeded random history (built by replaying random scripts
    through the correct concurrent object semantics, optionally with
    corrupted response values): the memoised witness search and the
    brute-force permutation search must agree on linearizability and
    on sequential consistency, and linearizable must imply SC.  For a
    planted-mutant artifact, the history is a real execution of the
    mutant workload program (stale read, dropped dequeue, double
    acquire) and *both* deciders must additionally reject it as
    non-linearizable -- the oracle kills the planted mutants, not just
    compares implementations.

    ``linearizable_impl`` / ``sc_impl`` inject the implementation under
    test (defaults: the production checkers in
    :mod:`repro.verify.consistency`); the killed-mutant tests pass
    deliberately lying ones.
    """
    from ..problems.objects import planted_mutant_history
    from ..verify.consistency import (
        brute_force_linearizable,
        linearizable,
    )

    if artifact.planted is not None:
        history = planted_mutant_history(artifact.planted)
    else:
        rng = random.Random(artifact.seed)
        history = random_object_history(
            rng, artifact.object_type, n_procs=artifact.n_procs,
            ops_per_proc=artifact.ops_per_proc, corrupt=artifact.corrupt)
    message = check_history_agreement(
        history, linearizable_impl=linearizable_impl, sc_impl=sc_impl)
    if message is not None:
        return message
    if artifact.planted is not None:
        lin_fn = linearizable_impl or linearizable
        if lin_fn(history):
            return (f"planted mutant {artifact.planted!r} judged "
                    "linearizable by the witness search")
        if brute_force_linearizable(history):
            return (f"planted mutant {artifact.planted!r} judged "
                    "linearizable by the brute-force oracle")
    return None


# ---------------------------------------------------------------------------
# Composite artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectsArtifact:
    """A seeded object-history spec for the objects-differential oracle.

    Pure data (strings, ints, bools), so ``repr`` round-trips into the
    shrinker's pytest repro snippets.  ``planted`` selects one of the
    planted non-linearizable mutants instead of a random history.
    """

    object_type: str
    seed: int
    n_procs: int = 2
    ops_per_proc: int = 3
    corrupt: bool = False
    planted: Optional[str] = None

    def shrink_candidates(self) -> Iterator["ObjectsArtifact"]:
        if self.planted is not None:
            return
        if self.ops_per_proc > 1:
            yield replace(self, ops_per_proc=self.ops_per_proc - 1)
        if self.n_procs > 2:
            yield replace(self, n_procs=self.n_procs - 1)
        if self.corrupt:
            yield replace(self, corrupt=False)

    def __len__(self) -> int:
        return self.n_procs * self.ops_per_proc


@dataclass(frozen=True)
class ComposeArtifact:
    """Two element-disjoint recipes for the composition laws."""

    a: ComputationRecipe
    b: ComputationRecipe

    def shrink_candidates(self) -> Iterator["ComposeArtifact"]:
        for cand in self.a.shrink_candidates():
            yield replace(self, a=cand)
        for cand in self.b.shrink_candidates():
            yield replace(self, b=cand)

    def __len__(self) -> int:
        return len(self.a) + len(self.b)


@dataclass(frozen=True)
class CheckerArtifact:
    """A recipe plus the seed regenerating its random restriction.

    Storing the formula *seed* rather than the formula keeps the
    artifact ``repr``-round-trippable (formulas print as math, not as
    constructors) while staying a pure function of the artifact: the
    checker rebuilds the formula from the seed and the built
    computation's vocabulary.
    """

    recipe: ComputationRecipe
    formula_seed: int
    max_depth: int = 3

    def restriction(self, comp: Computation) -> Restriction:
        body = random_formula(
            random.Random(self.formula_seed), comp, max_depth=self.max_depth)
        return Restriction("fuzz-always", Henceforth(body))

    def shrink_candidates(self) -> Iterator["CheckerArtifact"]:
        for cand in self.recipe.shrink_candidates():
            yield replace(self, recipe=cand)

    def __len__(self) -> int:
        return len(self.recipe)


@dataclass(frozen=True)
class ReplayArtifact:
    """A (program case, seed) pair for the replay-determinism oracle."""

    case: str
    seed: int
    spec: Optional[FuzzProgramSpec] = None

    def program(self):
        if self.case == "fuzz":
            assert self.spec is not None
            return FuzzProgram(self.spec)
        if self.case == "monitor":
            from ..langs.monitor import MonitorProgram, one_slot_buffer_system
            return MonitorProgram(one_slot_buffer_system(items=(1, 2)))
        if self.case == "csp":
            from ..langs.csp import CspProgram, one_slot_buffer_csp_system
            return CspProgram(one_slot_buffer_csp_system(items=(1, 2)))
        if self.case == "ada":
            from ..langs.ada import AdaProgram, one_slot_buffer_ada_system
            return AdaProgram(one_slot_buffer_ada_system(items=(1, 2)))
        raise ValueError(f"unknown replay case {self.case!r}")


# ---------------------------------------------------------------------------
# The oracle registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Oracle:
    """One named fuzz oracle: generator + deterministic checker."""

    name: str
    summary: str
    generate: Callable[[random.Random], object]
    check: Callable[[object], Optional[str]]
    shrink: Optional[Callable[[object], Iterator[object]]] = None


def make_oracles(jobs: int = 2) -> Dict[str, Oracle]:
    """All oracles, keyed by name, in their canonical order.

    ``jobs`` parameterises the engine-differential oracle's parallel
    pipeline.
    """

    def gen_order(rng: random.Random) -> ComputationRecipe:
        return random_computation(rng, max_elements=4, max_events=10)

    def gen_history(rng: random.Random) -> ComputationRecipe:
        return random_computation(rng, max_elements=3, max_events=6)

    def gen_compose(rng: random.Random) -> ComposeArtifact:
        return ComposeArtifact(
            a=random_computation(rng, max_elements=2, max_events=5,
                                 with_groups=False, element_prefix="L"),
            b=random_computation(rng, max_elements=2, max_events=5,
                                 with_groups=False, element_prefix="R"),
        )

    def gen_checker(rng: random.Random) -> CheckerArtifact:
        return CheckerArtifact(
            recipe=random_computation(rng, max_elements=3, max_events=6,
                                      with_groups=False),
            formula_seed=rng.randrange(2 ** 31),
        )

    _REPLAY_CASES = ("monitor", "csp", "ada", "fuzz")

    def gen_replay(rng: random.Random) -> ReplayArtifact:
        case = rng.choice(_REPLAY_CASES)
        spec = random_program_spec(rng) if case == "fuzz" else None
        return ReplayArtifact(case=case, seed=rng.randrange(2 ** 31),
                              spec=spec)

    def gen_engine(rng: random.Random) -> FuzzProgramSpec:
        return random_program_spec(rng, max_procs=3, max_steps_per_proc=2,
                                   dep_density=0.5)

    _PLANTED = (("stale-read", "register"), ("dropped-dequeue", "queue"),
                ("double-acquire", "lock"))

    def gen_objects(rng: random.Random) -> ObjectsArtifact:
        if rng.random() < 0.2:
            kind, object_type = _PLANTED[rng.randrange(len(_PLANTED))]
            return ObjectsArtifact(object_type=object_type, seed=0,
                                   planted=kind)
        # sizes keep every history within the brute-force oracle's cap
        # (lock scripts round odd lengths up to a trailing release)
        n_procs, ops_per_proc = rng.choice(((2, 2), (2, 3), (2, 3), (3, 2)))
        return ObjectsArtifact(
            object_type=OBJECT_TYPES[rng.randrange(len(OBJECT_TYPES))],
            seed=rng.randrange(2 ** 31),
            n_procs=n_procs,
            ops_per_proc=ops_per_proc,
            corrupt=rng.random() < 0.5,
        )

    oracles = [
        Oracle(
            "order-laws",
            "⇒ is a strict partial order; Relation algebra round-trips",
            gen_order,
            lambda recipe: check_order_laws(recipe.build()),
            lambda recipe: recipe.shrink_candidates(),
        ),
        Oracle(
            "history-lattice",
            "histories are a lattice of down-closed sets; vhs steps are "
            "concurrent antichains",
            gen_history,
            lambda recipe: check_history_laws(recipe.build()),
            lambda recipe: recipe.shrink_candidates(),
        ),
        Oracle(
            "fingerprint",
            "stable fingerprints: insertion-order invariant, "
            "mutation sensitive",
            gen_order,
            check_fingerprint_laws,
            lambda recipe: recipe.shrink_candidates(),
        ),
        Oracle(
            "compose-project",
            "parallel/sequential composition laws; identity projection "
            "round-trip",
            gen_compose,
            lambda art: check_compose_laws(art.a, art.b),
            lambda art: art.shrink_candidates(),
        ),
        Oracle(
            "checker-modes",
            "lattice vs exact temporal checking agree on □p",
            gen_checker,
            lambda art: check_modes_agree(
                (comp := art.recipe.build()), art.restriction(comp)),
            lambda art: art.shrink_candidates(),
        ),
        Oracle(
            "compiled-differential",
            "compiled bitmask checker == lattice interpreter == exact "
            "enumeration",
            gen_checker,
            lambda art: check_compiled_agrees(
                (comp := art.recipe.build()), art.restriction(comp)),
            lambda art: art.shrink_candidates(),
        ),
        Oracle(
            "slice-differential",
            "slice-routed checker == lattice interpreter == exact "
            "enumeration",
            gen_checker,
            lambda art: check_slice_agrees(
                (comp := art.recipe.build()), art.restriction(comp)),
            lambda art: art.shrink_candidates(),
        ),
        Oracle(
            "dfa-differential",
            "automaton monitor: exploration unperturbed, early verdicts "
            "== completed-computation verdicts, dfa routing == plain",
            gen_engine,
            check_dfa_agrees,
            lambda spec: spec.shrink_candidates(),
        ),
        Oracle(
            "replay-determinism",
            "seeded runs and prefix replay reproduce byte-identical "
            "computations",
            gen_replay,
            lambda art: check_replay_determinism(art.program(), art.seed),
        ),
        Oracle(
            "engine-differential",
            "serial == parallel == cached over report signatures",
            gen_engine,
            lambda spec: check_engine_agreement(spec, jobs=jobs),
            lambda spec: spec.shrink_candidates(),
        ),
        Oracle(
            "por-differential",
            "ample-set reduction preserves computation classes, verdicts "
            "and witnesses",
            gen_engine,
            check_por_agrees,
            lambda spec: spec.shrink_candidates(),
        ),
        Oracle(
            "objects-differential",
            "object-history consistency: witness search == brute-force "
            "permutation oracle for linearizability and SC; planted "
            "non-linearizable mutants rejected",
            gen_objects,
            check_objects_agree,
            lambda art: art.shrink_candidates(),
        ),
    ]
    return {o.name: o for o in oracles}


def oracle_names() -> Tuple[str, ...]:
    return tuple(make_oracles())
