"""Generative differential testing for the GEM reproduction.

A standing adversary for the rest of the library: seeded random
computations, specifications, and programs (:mod:`.generators`,
:mod:`.programs`) are run against metamorphic and differential oracles
(:mod:`.oracles`) -- the strict-partial-order laws of ``⇒``, the
history-lattice laws of Section 7, fingerprint relabeling invariance,
composition/projection round-trips, lattice-vs-exact checker agreement,
compiled and slice-routed checker agreement, replay determinism, and
the engine's serial == parallel == cached contract.  Failures are greedily shrunk and rendered as runnable pytest
snippets (:mod:`.shrink`); :mod:`.runner` drives the loop behind the
``repro fuzz`` CLI subcommand.

See docs/FUZZING.md for the oracle catalog and replay instructions.
"""

from .generators import (
    ComputationRecipe,
    GroupRecipe,
    random_choices,
    random_computation,
    random_formula,
)
from .oracles import (
    CheckerArtifact,
    ComposeArtifact,
    Oracle,
    ReplayArtifact,
    check_compiled_agrees,
    check_compose_laws,
    check_dfa_agrees,
    check_engine_agreement,
    check_fingerprint_laws,
    check_history_laws,
    check_modes_agree,
    check_order_laws,
    check_replay_determinism,
    check_slice_agrees,
    identity_correspondence,
    make_oracles,
    oracle_names,
)
from .programs import (
    FORK_DROPS_ENABLES,
    FuzzProgram,
    FuzzProgramSpec,
    RecipeProgram,
    dfa_problem_spec,
    fuzz_correspondence,
    fuzz_problem_spec,
    random_program_spec,
)
from .runner import FuzzConfig, FuzzFailure, FuzzStats, run_fuzz, seed_token
from .shrink import repro_snippet, shrink_failure

__all__ = [
    "ComputationRecipe", "GroupRecipe", "random_computation",
    "random_formula", "random_choices",
    "Oracle", "make_oracles", "oracle_names",
    "CheckerArtifact", "ComposeArtifact", "ReplayArtifact",
    "check_order_laws", "check_history_laws", "check_fingerprint_laws",
    "check_compiled_agrees", "check_compose_laws", "check_modes_agree",
    "check_replay_determinism", "check_slice_agrees",
    "check_dfa_agrees",
    "check_engine_agreement", "identity_correspondence",
    "FuzzProgram", "FuzzProgramSpec", "RecipeProgram",
    "FORK_DROPS_ENABLES", "fuzz_problem_spec", "fuzz_correspondence",
    "dfa_problem_spec",
    "random_program_spec",
    "FuzzConfig", "FuzzFailure", "FuzzStats", "run_fuzz", "seed_token",
    "shrink_failure", "repro_snippet",
]
