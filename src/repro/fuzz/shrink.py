"""Greedy shrinking of failing fuzz artifacts, and repro emission.

The shrinker is deliberately dumb: ask the artifact for one-step
reductions (drop an event, an edge, a process, a step, a dep), keep the
first reduction that still fails, repeat until no reduction fails.
Greedy delta-debugging terminates because every candidate is strictly
smaller, and in practice lands within an event or two of minimal on
this repo's artifact shapes.

A shrunk failure is emitted as a *runnable pytest snippet*: the
artifact's ``repr`` is a valid constructor expression (recipes and
specs are pure-data dataclasses), so the snippet needs no pickles and
no fuzzing machinery beyond the public oracle registry.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional, Set, Tuple

ShrinkFn = Callable[[object], Iterator[object]]
FailFn = Callable[[object], Optional[str]]


def artifact_size(artifact: object) -> int:
    """Events (or steps) in an artifact; 0 when it has no notion of size."""
    try:
        return len(artifact)  # type: ignore[arg-type]
    except TypeError:
        return 0


def shrink_failure(
    artifact: object,
    check: FailFn,
    shrink: Optional[ShrinkFn],
    max_checks: int = 2000,
    on_reduce: Optional[Callable[[object], None]] = None,
) -> Tuple[object, str]:
    """Greedily minimise ``artifact`` while ``check`` keeps failing.

    Returns the smallest failing artifact found and its failure
    message.  ``check`` returns a message on failure, ``None`` on pass;
    the initial artifact must fail.  ``max_checks`` bounds total oracle
    invocations so a slow oracle cannot stall the fuzz loop.
    ``on_reduce`` is invoked with each *accepted* reduction -- the fuzz
    runner counts shrink steps (and meters them) through it.
    """
    message = check(artifact)
    if message is None:
        raise ValueError("shrink_failure called with a passing artifact")
    if shrink is None:
        return artifact, message
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in shrink(artifact):
            checks += 1
            try:
                cand_message = check(candidate)
            except Exception:
                # a reduction may produce an artifact the oracle cannot
                # even process; that is not the failure we are chasing
                cand_message = None
            if cand_message is not None:
                artifact, message = candidate, cand_message
                progress = True
                if on_reduce is not None:
                    on_reduce(candidate)
                break
            if checks >= max_checks:
                break
    return artifact, message


def _artifact_imports(artifact: object) -> Set[Tuple[str, str]]:
    """(module, class) pairs needed to ``eval(repr(artifact))``."""
    needed: Set[Tuple[str, str]] = set()

    def walk(obj: object) -> None:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            cls = type(obj)
            needed.add((cls.__module__, cls.__name__))
            for f in dataclasses.fields(obj):
                walk(getattr(obj, f.name))
        elif isinstance(obj, (tuple, list, set, frozenset)):
            for item in obj:
                walk(item)
        elif isinstance(obj, dict):
            for k, v in obj.items():
                walk(k)
                walk(v)

    walk(artifact)
    return needed


def repro_snippet(oracle_name: str, artifact: object, message: str) -> str:
    """A self-contained failing pytest test reproducing the artifact.

    The test *fails* while the bug exists (that is the point); it
    passes once the underlying defect is fixed, at which moment it can
    graduate into the regression suite as-is.
    """
    imports = sorted(_artifact_imports(artifact))
    import_lines = "\n".join(
        f"from {module} import {name}" for module, name in imports)
    comment = "\n".join(f"#   {line}" for line in message.splitlines())
    return f'''\
# Auto-generated fuzz repro -- oracle {oracle_name!r}.
# Failure:
{comment}
{import_lines}
from repro.fuzz.oracles import make_oracles

ARTIFACT = {artifact!r}


def test_fuzz_repro():
    failure = make_oracles()[{oracle_name!r}].check(ARTIFACT)
    assert failure is None, failure
'''
