"""Scheduler programs used by the fuzzer.

:class:`FuzzProgramSpec` is a pure-data description of a tiny concurrent
program: ``procs[p]`` gives process ``p`` a number of sequential steps,
and ``deps`` adds cross-process prerequisites -- step ``s`` of process
``p`` may not run until step ``t`` of process ``q`` has, and when it
does run, the prerequisite's event *enables* it (a ``⊳`` edge, the
paper's Section 8.2 prerequisite pattern).  Like the recipes in
:mod:`repro.fuzz.generators`, specs ``repr``-round-trip, which is what
the shrinker and the repro snippets rely on.

The ``bug`` field plants known defects for the fuzzer's negative
controls.  ``"fork-drops-enables"`` violates the engine's cross-process
determinism contract: the cross-process enable edges are emitted only in
the main process, so computations built inside forked pool workers
differ from the serial pipeline's -- exactly the class of bug the
``engine-differential`` oracle exists to catch.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.element import ElementDecl
from ..core.event import EventClass, ParamSpec
from ..core.formula import PyPred, Restriction
from ..core.ids import EventId
from ..core.specification import Specification
from ..sim.runtime import Action, Footprint, SimpleState
from ..verify.correspondence import Correspondence, SignificantEvents
from .generators import ComputationRecipe

#: The one bug a spec can carry; see module docstring.
FORK_DROPS_ENABLES = "fork-drops-enables"


def _in_forked_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


@dataclass(frozen=True)
class FuzzProgramSpec:
    """Pure-data description of one fuzz program.

    ``procs[p]`` = number of steps of process ``p``; ``deps`` entries
    are ``(p, s, q, t)``: step ``s`` of proc ``p`` requires (and is
    enabled by) step ``t`` of proc ``q``.
    """

    procs: Tuple[int, ...]
    deps: Tuple[Tuple[int, int, int, int], ...] = ()
    bug: Optional[str] = None

    def __post_init__(self) -> None:
        for p, s, q, t in self.deps:
            if not (0 <= p < len(self.procs) and 0 <= s < self.procs[p]):
                raise ValueError(f"dep ({p},{s},{q},{t}): no such step {p}.{s}")
            if not (0 <= q < len(self.procs) and 0 <= t < self.procs[q]):
                raise ValueError(f"dep ({p},{s},{q},{t}): no such step {q}.{t}")
            if p == q:
                raise ValueError(
                    f"dep ({p},{s},{q},{t}): same-process deps are implicit")

    @property
    def total_steps(self) -> int:
        return sum(self.procs)

    # -- shrinking ---------------------------------------------------------

    def shrink_candidates(self) -> Iterator["FuzzProgramSpec"]:
        """One-step reductions: drop a process, a trailing step, a dep."""
        for p in reversed(range(len(self.procs))):
            procs = self.procs[:p] + self.procs[p + 1:]
            deps = tuple(
                (pp - (pp > p), s, q - (q > p), t)
                for pp, s, q, t in self.deps if pp != p and q != p)
            yield replace(self, procs=procs, deps=deps)
        for p in reversed(range(len(self.procs))):
            if self.procs[p] <= 1:
                continue
            last = self.procs[p] - 1
            procs = self.procs[:p] + (last,) + self.procs[p + 1:]
            deps = tuple(
                d for d in self.deps
                if not (d[0] == p and d[1] == last)
                and not (d[2] == p and d[3] == last))
            yield replace(self, procs=procs, deps=deps)
        for k in reversed(range(len(self.deps))):
            yield replace(self, deps=self.deps[:k] + self.deps[k + 1:])

    def __len__(self) -> int:
        return self.total_steps


class FuzzState(SimpleState):
    """Interpreter state for a :class:`FuzzProgramSpec`.

    Each process performs its steps in order (control-flow chaining via
    :class:`SimpleState`); a step with unmet cross-process deps is not
    enabled.  Every step emits one ``Step(s)`` event at element ``Pp``.
    """

    def __init__(self, spec: FuzzProgramSpec) -> None:
        super().__init__()
        self._spec = spec
        self._next = [0] * len(spec.procs)
        self._done: Dict[Tuple[int, int], object] = {}

    def enabled(self) -> List[Action]:
        actions = []
        for p, total in enumerate(self._spec.procs):
            s = self._next[p]
            if s >= total:
                continue
            if all((q, t) in self._done
                   for pp, ss, q, t in self._spec.deps
                   if pp == p and ss == s):
                actions.append(Action(f"P{p}", f"s{s}", key=(p, s)))
        return actions

    def step(self, action: Action) -> None:
        p, s = action.key  # type: ignore[misc]
        extra = [
            self._done[(q, t)]
            for pp, ss, q, t in self._spec.deps
            if pp == p and ss == s
        ]
        if self._spec.bug == FORK_DROPS_ENABLES and _in_forked_worker():
            extra = []  # the planted determinism violation
        ev = self.emit(f"P{p}", f"P{p}", "Step", {"s": s},
                       extra_enables=extra)
        self._done[(p, s)] = ev
        self._next[p] += 1

    def is_final(self) -> bool:
        return all(n >= total
                   for n, total in zip(self._next, self._spec.procs))

    # -- partial-order reduction hooks (repro.engine.por) ------------------
    #
    # Tokens: ("step", p, s) -- written exactly once, by step s of proc
    # p; read by every step that lists it as a prerequisite.  Two steps
    # with disjoint tokens emit at different elements with enables from
    # already-built events, so they commute to the identical partial
    # order; a step and a future step that reads its token must not be
    # reordered (the reader is not even enabled before the writer runs).

    def por_action_footprint(self, action: Action) -> Footprint:
        p, s = action.key  # type: ignore[misc]
        reads = frozenset(
            ("step", q, t)
            for pp, ss, q, t in self._spec.deps if pp == p and ss == s)
        return Footprint(reads, frozenset({("step", p, s)}))

    def por_remaining_footprints(self) -> Dict[str, Footprint]:
        out: Dict[str, Footprint] = {}
        for p, total in enumerate(self._spec.procs):
            if self._next[p] >= total:
                continue
            reads = set()
            writes = set()
            for s in range(self._next[p], total):
                writes.add(("step", p, s))
                for pp, ss, q, t in self._spec.deps:
                    if pp == p and ss == s:
                        reads.add(("step", q, t))
            out[f"P{p}"] = Footprint(frozenset(reads), frozenset(writes))
        return out


@dataclass(frozen=True)
class FuzzProgram:
    """The :class:`~repro.sim.runtime.Program` for a spec."""

    spec: FuzzProgramSpec

    def initial_state(self) -> FuzzState:
        return FuzzState(self.spec)


# ---------------------------------------------------------------------------
# Verification harness for fuzz programs
# ---------------------------------------------------------------------------


def _identity_params(ev) -> dict:
    return dict(ev.param_dict())


def fuzz_problem_spec(spec: FuzzProgramSpec) -> Specification:
    """A problem specification a correct run of ``spec`` satisfies.

    Declares every process element (so legality's element check has
    teeth) and requires each cross-process dep's enable edge to be
    present whenever both endpoints occurred -- the restriction that
    turns a dropped ``⊳`` edge into a failing verdict rather than just a
    different fingerprint.
    """
    elements = [
        ElementDecl.make(
            f"P{p}", [EventClass("Step", (ParamSpec("s", "INTEGER"),))])
        for p in range(len(spec.procs))
    ]

    def deps_present(history, _env, _deps=spec.deps):
        comp = history.computation
        for p, s, q, t in _deps:
            a, b = EventId(f"P{q}", t + 1), EventId(f"P{p}", s + 1)
            if a in comp and b in comp and not comp.enables(a, b):
                return False
        return True

    return Specification(
        "fuzz-program",
        elements=elements,
        restrictions=[Restriction(
            "dep-edges-present", PyPred("dep-edges-present", deps_present),
            comment="every cross-process prerequisite emitted its ⊳ edge")],
    )


def dfa_problem_spec(spec: FuzzProgramSpec) -> Specification:
    """:func:`fuzz_problem_spec` plus automaton-eligible restrictions.

    The base fuzz spec's only restriction is an opaque ``PyPred``
    (deliberately dfa-inert), so a dfa-differential oracle run over it
    would never exercise the monitor.  This variant adds two temporal
    restrictions the automata compiler accepts:

    * ``step-budget`` (box-reject): no three distinct ``Step`` events
      share a step index -- violated, early, exactly when at least
      three processes run, and holding otherwise, so both verdicts
      arise across random specs;
    * ``some-step`` (dia-accept): ◇ some event occurred -- satisfied on
      the first step, exercising the accepting-sink path.
    """
    from ..core.formula import (And, ClassAnywhere, DataEq, Eventually,
                                EventEq, Exists, ForAll, Henceforth, Implies,
                                Not, Occurred, Param)

    step = ClassAnywhere("Step")
    distinct = And((Not(EventEq("x", "y")), Not(EventEq("y", "z")),
                    Not(EventEq("x", "z"))))
    same_index = And((DataEq(Param("x", "s"), Param("y", "s")),
                      DataEq(Param("y", "s"), Param("z", "s"))))
    all_occurred = And((Occurred("x"), Occurred("y"), Occurred("z")))
    budget = Henceforth(ForAll("x", step, ForAll("y", step, ForAll(
        "z", step, Implies(And((distinct, same_index)),
                           Not(all_occurred))))))
    some_step = Eventually(Exists("x", step, Occurred("x")))
    return fuzz_problem_spec(spec).extended(restrictions=[
        Restriction("step-budget", budget,
                    comment="no step index reached by three processes"),
        Restriction("some-step", some_step,
                    comment="at least one step runs"),
    ])


def fuzz_correspondence(spec: FuzzProgramSpec) -> Correspondence:
    """Identity correspondence: every Step event is significant."""
    return Correspondence(rules=tuple(
        SignificantEvents(
            name=f"id-P{p}", element=f"P{p}", event_class="Step",
            target_element=f"P{p}", target_class="Step",
            params=_identity_params)
        for p in range(len(spec.procs))
    ))


def random_program_spec(
    rng,
    max_procs: int = 3,
    max_steps_per_proc: int = 3,
    dep_density: float = 0.3,
    bug: Optional[str] = None,
) -> FuzzProgramSpec:
    """A seeded random spec, deadlock-free by construction.

    Deps always target a strictly smaller step index in another process
    (``t < s``), so any chain of waiting strictly decreases the step
    index and cannot cycle.
    """
    n_procs = rng.randint(2, max_procs)
    procs = tuple(rng.randint(1, max_steps_per_proc) for _ in range(n_procs))
    deps = []
    for p in range(n_procs):
        for s in range(1, procs[p]):
            if rng.random() >= dep_density:
                continue
            q = rng.choice([x for x in range(n_procs) if x != p])
            t = rng.randrange(min(s, procs[q]))
            deps.append((p, s, q, t))
    return FuzzProgramSpec(procs=procs, deps=tuple(deps), bug=bug)


# ---------------------------------------------------------------------------
# Single-run replay of a computation recipe
# ---------------------------------------------------------------------------


class _RecipeState:
    """Emits the recipe's events in insertion order; one run, no choice."""

    def __init__(self, recipe: ComputationRecipe) -> None:
        from ..core.computation import ComputationBuilder

        self._recipe = recipe
        self._builder = ComputationBuilder(recipe.group_structure())
        self._built: Dict[int, object] = {}
        self._pos = 0

    def enabled(self) -> List[Action]:
        if self._pos >= len(self._recipe.events):
            return []
        return [Action("replay", f"e{self._pos}", key=self._pos)]

    def step(self, action: Action) -> None:
        i = self._pos
        element, event_class, params, threads = self._recipe.events[i]
        self._built[i] = self._builder.add_event(
            element, event_class, dict(params), threads)
        for a, b in self._recipe.edges:
            if b == i:
                self._builder.add_enable(self._built[a], self._built[b])
        self._pos += 1

    def is_final(self) -> bool:
        return self._pos >= len(self._recipe.events)

    def computation(self):
        return self._builder.freeze()


@dataclass(frozen=True)
class RecipeProgram:
    """A program whose single execution is exactly ``recipe.build()``.

    Lets hand-written (or fuzz-found) computations flow through the full
    verification engine -- exploration, dedupe, cache -- as if an
    interpreter had produced them.
    """

    recipe: ComputationRecipe

    def initial_state(self) -> _RecipeState:
        return _RecipeState(self.recipe)
