"""repro -- a reproduction of GEM (Lansky & Owicki, 1983).

GEM is an event-oriented model of concurrent computation: a computation
is a set of partially ordered events, and languages, problems, and
programs are described as logic restrictions on the domain of possible
computations.  This package provides:

* :mod:`repro.core` -- the GEM model: events, elements, groups,
  computations, histories, the restriction language, threads, types,
  specifications, and the legality/restriction checker;
* :mod:`repro.sim` -- an interleaving explorer that generates the legal
  executions of instrumented concurrent programs as GEM computations;
* :mod:`repro.langs` -- Monitor, CSP, and ADA-tasking interpreters whose
  executions are emitted as GEM computations (the paper's three language
  primitives);
* :mod:`repro.problems` -- GEM problem specifications: variables, one-slot
  and bounded buffers, five Readers/Writers variants, the distributed
  database update, and the asynchronous Game of Life;
* :mod:`repro.verify` -- the paper's verification method: significant
  objects, projection, and ``PROG sat R`` checking.

Quickstart::

    from repro.core import ComputationBuilder

    b = ComputationBuilder()
    e1 = b.add_event("P", "Fork")
    e2 = b.add_event("Q", "Work")
    e3 = b.add_event("R", "Work")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    c = b.freeze()
    assert c.concurrent(e2.eid, e3.eid)
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
