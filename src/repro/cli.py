"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``verify <case>`` -- run one of the paper's verification cases
  (language × problem, plus the distributed ``db_update`` application)
  over all bounded executions and print the report; ``--mutant`` runs
  the negative control; ``--jobs N`` fans the engine out across N
  worker processes, ``--cache DIR`` makes repeat verifications
  incremental, ``--stats`` prints engine observability, ``--trace
  FILE`` writes the whole verification as a JSONL span trace
  (:mod:`repro.obs`; identical span structure for every ``--jobs``),
  ``--no-compile`` falls back from the compiled bitmask checker to the
  reference lattice interpreter (docs/PERF.md), ``--no-por`` disables
  the ample-set partial-order reduction and expands every
  interleaving (same verdicts either way; docs/ENGINE.md),
  ``--no-slice`` disables computation slicing and walks the history
  lattice for every temporal check (same verdicts either way;
  docs/SLICING.md), ``--no-dfa`` disables restriction automata and
  never cuts doomed branches early (same verdicts either way;
  docs/PERF.md);
* ``list`` -- list the available cases (``--json`` adds language and
  mutant-availability metadata, the same body the serve daemon's
  ``GET /cases`` returns);
* ``dot <case>`` -- print one execution of a case as Graphviz DOT;
* ``lattice`` -- print the Section 7 diamond's history lattice as DOT;
* ``examples`` -- print the paper's two inline worked examples
  (the §4 access table and the §7 history/vhs counts);
* ``fuzz`` -- run the generative differential tester
  (:mod:`repro.fuzz`): seeded random computations, formulas, and
  programs against the metamorphic oracle suite, shrinking any failure
  to a runnable pytest repro (see docs/FUZZING.md); also ``--trace``;
* ``profile <trace.jsonl>`` -- validate a written trace and print
  per-phase/per-span timings, top restrictions by evaluation cost, and
  worker utilisation (see docs/OBSERVABILITY.md);
* ``bench`` -- compiled-vs-interpreted checker/engine benchmarks with a
  JSON baseline and a speedup-ratio regression gate (``--json``
  writes/gates against ``BENCH_checker.json``; see docs/PERF.md);
* ``serve`` -- run the resident verification daemon (:mod:`repro.serve`:
  fork-once worker pool, shared result cache, JSON-over-HTTP API,
  Prometheus ``/metrics`` + ``/healthz`` + ``/readyz``, and -- unless
  ``--no-history`` -- a run-history row per completed job;
  see docs/SERVICE.md and docs/TELEMETRY.md);
* ``submit`` -- send one case to a running daemon and print its report
  summary (exit codes mirror ``verify``);
* ``history`` -- analyse the persistent run history
  (:mod:`repro.obs.runhistory`): ``list``/``show`` browse recorded
  runs, ``trends`` summarises per-(case, flags) timing, and
  ``regressions`` exits non-zero when the latest run of any series is
  slower (or prunes worse) than its median-of-last-N baseline beyond
  ``--tolerance`` -- CI consumes it directly;
* ``top`` -- live text dashboard over a running daemon's ``/metrics``,
  ``/stats`` and ``/jobs`` (``--once`` prints a single frame).

The CLI is a thin veneer over the library; every command's work is one
or two public API calls.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class CaseEntry:
    """One catalog case: metadata plus the workload factory.

    ``has_mutant`` records whether ``--mutant`` actually changes the
    workload (some CSP/Ada factories accept the flag but have no
    negative control); ``repro list --json`` and the daemon's ``GET
    /cases`` both report it so clients do not submit no-op mutants.
    """

    name: str
    language: str
    has_mutant: bool
    factory: Callable


def _case_language(name: str) -> str:
    for prefix in ("monitor", "csp", "ada", "objects"):
        if name.startswith(prefix + "-"):
            return prefix
    return "distributed"


#: Cases whose factory ignores the mutant flag (no negative control).
_NO_MUTANT = frozenset({
    "csp-one-slot-buffer", "ada-one-slot-buffer",
    "csp-bounded-buffer", "ada-bounded-buffer",
    "objects-counter",
})


def case_catalog() -> Dict[str, CaseEntry]:
    """The verification-case catalog with metadata, in stable order.

    This is the single source the CLI, the serve daemon's ``/cases``
    endpoint, and resident workers (rebuilding workloads from
    :class:`repro.engine.CaseRef` names) all resolve cases through.
    """
    return {
        name: CaseEntry(name=name, language=_case_language(name),
                        has_mutant=name not in _NO_MUTANT, factory=factory)
        for name, factory in _build_cases().items()
    }


def _build_cases() -> Dict[str, Callable]:
    """case name -> factory() returning (program, problem_spec,
    correspondence, program_spec)."""
    from .langs.ada import (
        AdaProgram,
        ada_program_spec,
        bounded_buffer_ada_system,
        one_slot_buffer_ada_system,
        rw_ada_system,
    )
    from .langs.csp import (
        CspProgram,
        bounded_buffer_csp_system,
        csp_program_spec,
        one_slot_buffer_csp_system,
        rw_csp_system,
    )
    from .langs.monitor import (
        MonitorProgram,
        bounded_buffer_system,
        monitor_program_spec,
        one_slot_buffer_monitor_unguarded,
        one_slot_buffer_system,
        readers_writers_monitor_writers_first,
        readers_writers_system,
        tally_system,
    )
    from .problems import bounded_buffer, one_slot_buffer, readers_writers, ring
    from .problems.objects import object_case
    from .problems.db_update import (
        DbUpdateProgram,
        db_update_spec,
        identity_correspondence,
        standard_requests,
    )

    def monitor_rw(mutant: bool):
        monitor = readers_writers_monitor_writers_first() if mutant else None
        system = readers_writers_system(1, 2, monitor=monitor)
        users = [c.name for c in system.callers]
        return (MonitorProgram(system),
                readers_writers.rw_problem_spec(users,
                                                variant="readers-priority"),
                readers_writers.monitor_correspondence("rw"),
                None if mutant else monitor_program_spec(system))

    def csp_rw(mutant: bool):
        system = rw_csp_system(1, 2, writers_first=mutant)
        readers, writers = ["reader1"], ["writer1", "writer2"]
        return (CspProgram(system),
                readers_writers.rw_problem_spec(readers + writers,
                                                variant="readers-priority"),
                readers_writers.csp_correspondence(readers, writers),
                None if mutant else csp_program_spec(system))

    def ada_rw(mutant: bool):
        system = rw_ada_system(1, 2, writers_first=mutant)
        users = ["reader1", "writer1", "writer2"]
        return (AdaProgram(system),
                readers_writers.rw_problem_spec(users,
                                                variant="readers-priority"),
                readers_writers.ada_correspondence(),
                None if mutant else ada_program_spec(system))

    def monitor_osb(mutant: bool):
        monitor = one_slot_buffer_monitor_unguarded() if mutant else None
        system = one_slot_buffer_system(items=(1, 2, 3), monitor=monitor)
        return (MonitorProgram(system),
                one_slot_buffer.one_slot_buffer_spec(),
                one_slot_buffer.monitor_correspondence("osb"),
                None if mutant else monitor_program_spec(system))

    def csp_osb(mutant: bool):
        system = one_slot_buffer_csp_system(items=(1, 2, 3))
        return (CspProgram(system),
                one_slot_buffer.one_slot_buffer_spec(temporal_safety=False),
                one_slot_buffer.csp_correspondence(),
                csp_program_spec(system))

    def ada_osb(mutant: bool):
        system = one_slot_buffer_ada_system(items=(1, 2, 3))
        return (AdaProgram(system),
                one_slot_buffer.one_slot_buffer_spec(),
                one_slot_buffer.ada_correspondence(),
                ada_program_spec(system))

    def monitor_bb(mutant: bool):
        system = bounded_buffer_system(capacity=2, items=(1, 2, 3))
        claimed = 1 if mutant else 2
        return (MonitorProgram(system),
                bounded_buffer.bounded_buffer_spec(claimed),
                bounded_buffer.monitor_correspondence("bb"),
                None if mutant else monitor_program_spec(system))

    def csp_bb(mutant: bool):
        system = bounded_buffer_csp_system(capacity=2, items=(1, 2, 3))
        return (CspProgram(system),
                bounded_buffer.bounded_buffer_spec(2, temporal_safety=False),
                bounded_buffer.csp_correspondence(),
                csp_program_spec(system))

    def ada_bb(mutant: bool):
        system = bounded_buffer_ada_system(capacity=2, items=(1, 2, 3))
        return (AdaProgram(system),
                bounded_buffer.bounded_buffer_spec(2),
                bounded_buffer.ada_correspondence(),
                ada_program_spec(system))

    def monitor_tally(mutant: bool):
        # Mesa semantics without eager reductions: the monitor-lock
        # interleavings stay in the tree, and the mutant's duplicate
        # mark stamps break the mark budget in every branch within a
        # few steps -- the restriction-automata (--dfa) showcase
        system = tally_system(2, 3, mutant=mutant)
        return (MonitorProgram(system, eager_reductions=False,
                               semantics="mesa"),
                ring.tally_spec(2),
                ring.mark_correspondence(),
                None if mutant else monitor_program_spec(system))

    def db_update(mutant: bool):
        # the paper's distributed-database application; the mutant loses
        # broadcasts, so full-propagation (and convergence) fail
        requests = standard_requests(n_clients=2, updates_per_client=2,
                                     n_sites=2)
        return (DbUpdateProgram(2, requests, lossy=mutant),
                db_update_spec(2, requests),
                identity_correspondence(2, requests),
                None)

    def objects_factory(object_type: str):
        # distributed-object workloads: linearizability / sequential
        # consistency decided as projection properties; the mutants are
        # the planted non-linearizable faults (stale read, dropped
        # dequeue, double acquire).  The counter has no negative
        # control, so per the _NO_MUTANT contract its factory ignores
        # the flag (object_program itself rejects unknown mutants).
        from .problems.objects import MUTANTS

        def factory(mutant: bool):
            return object_case(object_type,
                               mutant=mutant and object_type in MUTANTS)
        return factory

    return {
        "monitor-readers-writers": monitor_rw,
        "csp-readers-writers": csp_rw,
        "ada-readers-writers": ada_rw,
        "monitor-one-slot-buffer": monitor_osb,
        "csp-one-slot-buffer": csp_osb,
        "ada-one-slot-buffer": ada_osb,
        "monitor-bounded-buffer": monitor_bb,
        "monitor-tally-mesa": monitor_tally,
        "csp-bounded-buffer": csp_bb,
        "ada-bounded-buffer": ada_bb,
        "db_update": db_update,
        "objects-register": objects_factory("register"),
        "objects-queue": objects_factory("queue"),
        "objects-lock": objects_factory("lock"),
        "objects-counter": objects_factory("counter"),
    }


def cmd_list(args) -> int:
    catalog = case_catalog()
    if getattr(args, "json", False):
        from .serve.protocol import catalog_entries

        print(json.dumps({"cases": catalog_entries()}, indent=2,
                         sort_keys=True))
        return 0
    for name in sorted(catalog):
        print(name)
    return 0


def cmd_verify(args) -> int:
    import time

    from .verify import verify_program

    cases = _build_cases()
    if args.case not in cases:
        print(f"unknown case {args.case!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
    program, spec, correspondence, program_spec = cases[args.case](args.mutant)
    mode = "lattice" if args.no_compile else "compiled"
    started = time.perf_counter()
    report = verify_program(program, spec, correspondence,
                            program_spec=program_spec,
                            jobs=args.jobs, cache_dir=args.cache,
                            temporal_mode=mode,
                            tracer=tracer, por=args.por, slice=args.slice,
                            dfa=args.dfa)
    wall_s = time.perf_counter() - started
    print(report.summary())
    if args.history:
        from .obs import RunHistory, record_report

        run_id = record_report(
            RunHistory(args.history), source="cli", case=args.case,
            flags={"jobs": args.jobs, "por": args.por, "slice": args.slice,
                   "dfa": args.dfa, "compile": not args.no_compile,
                   "mutant": args.mutant},
            report=report, wall_s=wall_s)
        print(f"history: run #{run_id} recorded in {args.history}")
    if args.stats and report.engine_stats is not None:
        print(report.engine_stats.describe())
    if (args.witness or args.witness_dot) and not report.ok:
        _print_witness(program, spec, correspondence, report, tracer,
                       dot_file=args.witness_dot)
    if args.trace:
        from .obs import write_trace

        metrics = (report.engine_stats.metrics
                   if report.engine_stats is not None else None)
        n = write_trace(args.trace, tracer, metrics)
        print(f"trace: {n} record(s) written to {args.trace}")
    if args.mutant:
        return 0 if not report.ok else 1
    return 0 if report.ok else 1


def _print_witness(program, spec, correspondence, report, tracer=None,
                   dot_file=None) -> int:
    """Extract and print a counterexample for the first failed verdict.

    The failing run is *replayed* from the engine's recorded choice
    sequence (``report.failing_run_choices``) rather than re-exploring
    every run to reach its index; re-exploration remains as the
    fallback for reports without provenance.  With a tracer the replay
    is recorded as a ``witness-replay`` span and the checker attaches a
    subformula explanation trace; ``dot_file`` additionally writes the
    explanation's Graphviz rendering.
    """
    from .core.witness import find_witness
    from .obs import NULL_TRACER
    from .sim import explore
    from .sim.scheduler import replay_prefix
    from .verify import project

    tracer = tracer or NULL_TRACER
    failing = [v for v in report.verdicts.values() if not v.holds]
    if not failing:
        return 0
    verdict = failing[0]
    run_index = verdict.failing_runs[0]
    restriction = spec.restriction(verdict.name)
    with tracer.span("witness-replay",
                     attrs={"restriction": verdict.name}) as span:
        choices = report.failing_run_choices.get(run_index)
        if choices is not None:
            computation = replay_prefix(program, choices).computation()
            span.set_meta(replayed=True, choices=len(choices))
        else:
            computation = None
            for i, run in enumerate(explore(program)):
                if i == run_index:
                    computation = run.computation
                    break
            span.set_meta(replayed=False)
            if computation is None:
                return 0
        projected = spec.label_threads(
            project(computation, correspondence))
        witness = find_witness(projected, restriction)
        explanation = None
        if tracer.enabled or dot_file:
            from .obs import explain_restriction

            explanation = explain_restriction(projected, restriction)
            if explanation is not None:
                tracer.add_explanation(explanation.to_record())
    print(f"\ncounterexample for {verdict.name!r} (run {run_index}):")
    if witness is None:
        print("  (witness search did not localise the failure)")
    else:
        for line in witness.describe().splitlines():
            print("  " + line)
    if explanation is not None:
        print()
        print(explanation.render_text())
        if dot_file:
            with open(dot_file, "w", encoding="utf-8") as fh:
                fh.write(explanation.to_dot() + "\n")
            print(f"explanation DOT written to {dot_file}")
    return 0


def cmd_dot(args) -> int:
    from .core.dot import computation_to_dot
    from .sim import run_random

    cases = _build_cases()
    if args.case not in cases:
        print(f"unknown case {args.case!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    program, _spec, _corr, _pspec = cases[args.case](False)
    run = run_random(program, seed=args.seed)
    print(computation_to_dot(run.computation, title=args.case,
                             show_params=args.params))
    return 0


def cmd_lattice(_args) -> int:
    from .core import ComputationBuilder
    from .core.dot import history_lattice_to_dot

    b = ComputationBuilder()
    e1 = b.add_event("E1", "A")
    e2 = b.add_event("E2", "A")
    e3 = b.add_event("E3", "A")
    e4 = b.add_event("E4", "A")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    print(history_lattice_to_dot(b.freeze(), title="section-7"))
    return 0


def cmd_examples(_args) -> int:
    from .core import (
        ComputationBuilder,
        GroupDecl,
        GroupStructure,
        all_histories,
        count_maximal_history_sequences,
    )

    structure = GroupStructure(
        [f"EL{i}" for i in range(1, 7)],
        [
            GroupDecl.make("G1", ["EL2", "EL3"]),
            GroupDecl.make("G2", ["EL4", "EL5"]),
            GroupDecl.make("G3", ["EL3", "EL4"]),
            GroupDecl.make("G4", ["EL1"]),
        ],
    )
    print("Section 4 allowed communications:")
    for src, dsts in structure.access_table().items():
        print(f"  {src}: {', '.join(sorted(dsts))}")

    b = ComputationBuilder()
    e1 = b.add_event("E1", "A")
    e2 = b.add_event("E2", "A")
    e3 = b.add_event("E3", "A")
    e4 = b.add_event("E4", "A")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    comp = b.freeze()
    print("\nSection 7 diamond:")
    print(f"  non-empty histories: "
          f"{len(all_histories(comp, include_empty=False))} (paper: 5)")
    print(f"  valid history sequences: "
          f"{count_maximal_history_sequences(comp, max_step=None)} "
          "(paper: 3)")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import FuzzConfig, oracle_names, run_fuzz

    known = oracle_names()
    selected = tuple(args.oracle) if args.oracle else None
    if selected:
        unknown = [n for n in selected if n not in known]
        if unknown:
            print(f"unknown oracle(s) {unknown}; known: {list(known)}",
                  file=sys.stderr)
            return 2
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        oracles=selected,
        jobs=args.jobs,
        shrink=not args.no_shrink,
    )
    tracer = metrics = None
    if args.trace:
        from .obs import MetricsRegistry, Tracer

        tracer, metrics = Tracer(), MetricsRegistry()
    failures, stats = run_fuzz(config, tracer=tracer, metrics=metrics)
    if args.trace:
        from .obs import write_trace

        n = write_trace(args.trace, tracer, metrics)
        print(f"trace: {n} record(s) written to {args.trace}")
    print(stats.describe())
    for failure in failures:
        print()
        print(failure.describe())
        print("--- repro snippet " + "-" * 50)
        print(failure.snippet, end="")
        print("-" * 68)
    return 1 if failures else 0


def cmd_profile(args) -> int:
    from .obs import load_trace, render_profile

    data = load_trace(args.trace, strict=args.strict)
    print(render_profile(data, top=args.top))
    return 0


def cmd_bench(args) -> int:
    from .bench import run_bench

    return run_bench(quick=args.quick, json_path=args.json,
                     baseline_path=args.baseline, repeats=args.repeats,
                     only=args.only)


def cmd_serve(args) -> int:
    from .obs.runhistory import DEFAULT_HISTORY_DB
    from .serve import run_daemon

    history_db = (None if args.no_history
                  else (args.history_db or DEFAULT_HISTORY_DB))
    return run_daemon(host=args.host, port=args.port, jobs=args.jobs,
                      cache_dir=args.cache_dir,
                      cache_bytes=args.cache_mb << 20,
                      job_workers=args.job_workers,
                      history_db=history_db)


def cmd_submit(args) -> int:
    from .serve import ServeClient
    from .serve.client import ServeError

    spec: Dict[str, object] = {"case": args.case}
    if args.mutant:
        spec["mutant"] = True
    if args.jobs != 1:
        spec["jobs"] = args.jobs
    if not args.por:
        spec["por"] = False
    if not args.slice:
        spec["slice"] = False
    if not args.dfa:
        spec["dfa"] = False
    if args.no_compile:
        spec["compile"] = False
    if args.history_cap is not None:
        spec["history_cap"] = args.history_cap

    client = ServeClient(args.host, args.port)
    try:
        (job_id,) = client.submit(spec)
        if args.no_wait:
            print(job_id)
            return 0
        snap = client.wait(job_id, timeout=args.timeout)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach daemon at "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    if snap["state"] != "done":
        print(f"job {job_id}: {snap['state']}"
              + (f" ({snap['error']})" if snap.get("error") else ""),
              file=sys.stderr)
        return 2
    result = snap["result"]
    print(result["summary"])
    if args.signature:
        print(json.dumps(result["signature"]))
    if args.stats:
        print(json.dumps(result["stats"], indent=2, sort_keys=True))
    ok = result["ok"]
    if args.mutant:
        return 0 if not ok else 1
    return 0 if ok else 1


def cmd_history(args) -> int:
    import os

    from .obs import RunHistory, parse_tolerance
    from .obs.runhistory import render_list, render_show, render_trends

    if not os.path.exists(args.db):
        print(f"error: history db {args.db!r} does not exist "
              "(run with --history, or point --db at the daemon's)",
              file=sys.stderr)
        return 2
    history = RunHistory(args.db)
    if args.history_command == "list":
        print(render_list(history.runs(case=args.case, limit=args.limit)))
        return 0
    if args.history_command == "show":
        row = history.run(args.run_id)
        if row is None:
            print(f"error: no run #{args.run_id} in {args.db}",
                  file=sys.stderr)
            return 2
        print(render_show(row))
        return 0
    if args.history_command == "trends":
        print(render_trends(history.trends(case=args.case,
                                           window=args.window)))
        return 0
    # regressions: the CI gate -- non-zero exit when anything regressed
    found = history.regressions(case=args.case,
                                baseline_runs=args.window,
                                tolerance=parse_tolerance(args.tolerance))
    for regression in found:
        print(f"REGRESSION: {regression.describe()}")
    series = len(history.trends(case=args.case))
    if found:
        print(f"{len(found)} regression(s) across {series} series")
        return 1
    print(f"no regressions across {series} series")
    return 0


def cmd_top(args) -> int:
    from .obs import run_top

    return run_top(host=args.host, port=args.port,
                   interval=args.interval, once=args.once)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GEM (Lansky & Owicki 1983) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list verification cases")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable catalog (name, language, "
                             "mutant availability; same body as the serve "
                             "daemon's GET /cases)")

    p_verify = sub.add_parser("verify", help="run a verification case")
    p_verify.add_argument("case")
    p_verify.add_argument("--mutant", action="store_true",
                          help="run the case's negative control")
    p_verify.add_argument("--witness", action="store_true",
                          help="on failure, print a counterexample")
    p_verify.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for the verification "
                               "engine (default 1 = serial)")
    p_verify.add_argument("--cache", default=None, metavar="DIR",
                          help="persistent result-cache directory "
                               "(re-verification becomes incremental)")
    p_verify.add_argument("--stats", action="store_true",
                          help="print engine statistics (shards, dedupe "
                               "ratio, cache hits, phase times)")
    p_verify.add_argument("--trace", default=None, metavar="FILE",
                          help="write a JSONL span trace of the whole "
                               "verification (schema-versioned; analyse "
                               "with 'repro profile FILE')")
    p_verify.add_argument("--witness-dot", default=None, metavar="FILE",
                          help="on failure, write the failure-explanation "
                               "trace as Graphviz DOT (implies the witness "
                               "replay)")
    p_verify.add_argument("--no-compile", action="store_true",
                          help="check restrictions with the reference "
                               "lattice interpreter instead of the "
                               "compiled bitmask checker (escape hatch; "
                               "reports are identical, only slower)")
    p_verify.add_argument("--por", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="ample-set partial-order reduction of the "
                               "exploration (default on; --no-por explores "
                               "every interleaving -- same verdicts and "
                               "witnesses, larger run census)")
    p_verify.add_argument("--slice", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="computation slicing: decide regular "
                               "temporal restrictions exactly on the "
                               "join-closed sublattice of satisfying cuts "
                               "(default on; --no-slice walks the history "
                               "lattice for every check -- same verdicts "
                               "either way; docs/SLICING.md)")
    p_verify.add_argument("--dfa", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="restriction automata: resolve temporal "
                               "checks by compiled DFA and cut doomed "
                               "branches early during exploration "
                               "(default on; --no-dfa takes the ordinary "
                               "route for every check -- same verdicts "
                               "and witnesses either way; docs/PERF.md)")
    p_verify.add_argument("--history", nargs="?", metavar="DB",
                          const="repro_history.sqlite", default=None,
                          help="record this run in the persistent run "
                               "history (default file: "
                               "repro_history.sqlite; analyse with "
                               "'repro history'; docs/TELEMETRY.md)")

    p_dot = sub.add_parser("dot", help="print one execution as DOT")
    p_dot.add_argument("case")
    p_dot.add_argument("--seed", type=int, default=0)
    p_dot.add_argument("--params", action="store_true",
                       help="show event parameters in labels")

    sub.add_parser("lattice", help="print the §7 history lattice as DOT")
    sub.add_parser("examples", help="print the paper's inline examples")

    p_fuzz = sub.add_parser(
        "fuzz", help="run the generative differential tester")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; every artifact's seed token is "
                             "derived from it (default 0)")
    p_fuzz.add_argument("--iterations", type=int, default=200, metavar="N",
                        help="total iterations, round-robin over the "
                             "selected oracles (default 200)")
    p_fuzz.add_argument("--oracle", action="append", metavar="NAME",
                        help="run only this oracle (repeatable; "
                             "default: all)")
    p_fuzz.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes for the engine-differential "
                             "oracle's parallel pipeline (default 2)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimising them")
    p_fuzz.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL span trace of the fuzz run")

    p_profile = sub.add_parser(
        "profile", help="analyse a JSONL trace written by --trace")
    p_profile.add_argument("trace", metavar="TRACE.jsonl")
    p_profile.add_argument("--top", type=int, default=10, metavar="N",
                           help="rows per ranking table (default 10)")
    p_profile.add_argument("--strict", action="store_true",
                           help="reject a truncated or corrupt stream "
                                "outright instead of profiling its valid "
                                "prefix with a warning (a stream with no "
                                "valid header is always rejected)")

    p_bench = sub.add_parser(
        "bench", help="compiled-checker benchmarks with a regression gate "
                      "(docs/PERF.md)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small workloads only, skip the engine bench "
                              "(CI bench-smoke)")
    p_bench.add_argument("--json", nargs="?", const="BENCH_checker.json",
                         default=None, metavar="FILE",
                         help="write results as JSON (default file: "
                              "BENCH_checker.json); an existing file is "
                              "the regression baseline first")
    p_bench.add_argument("--baseline", default=None, metavar="FILE",
                         help="gate against this baseline instead of the "
                              "--json target")
    p_bench.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="timing repeats per measurement, best-of "
                              "(default 3)")
    p_bench.add_argument("--only", default=None, metavar="PREFIX",
                         help="run only rows whose name starts with this "
                              "prefix (e.g. 'por', 'dfa:noeager')")

    p_serve = sub.add_parser(
        "serve", help="run the verification daemon (docs/SERVICE.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="resident worker processes, forked once at "
                              "startup (default 2)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persist the shared result cache here "
                              "(default: memory only)")
    p_serve.add_argument("--cache-mb", type=int, default=32, metavar="MB",
                         help="shared result-cache LRU byte budget "
                              "(default 32)")
    p_serve.add_argument("--job-workers", type=int, default=2, metavar="N",
                         help="verifications run concurrently (default 2)")
    p_serve.add_argument("--history-db", default=None, metavar="DB",
                         help="record one run-history row per completed "
                              "job here (default: repro_history.sqlite)")
    p_serve.add_argument("--no-history", action="store_true",
                         help="do not record run history")

    p_submit = sub.add_parser(
        "submit", help="submit a case to a running serve daemon")
    p_submit.add_argument("case")
    p_submit.add_argument("--mutant", action="store_true",
                          help="run the case's negative control")
    p_submit.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="shard fan-out for this job (default 1)")
    p_submit.add_argument("--por", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="partial-order reduction (default on)")
    p_submit.add_argument("--slice", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="computation slicing (default on)")
    p_submit.add_argument("--dfa", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="restriction automata (default on)")
    p_submit.add_argument("--no-compile", action="store_true",
                          help="lattice interpreter instead of the "
                               "compiled checker")
    p_submit.add_argument("--history-cap", type=int, default=None,
                          metavar="N", help="history-lattice size cap")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8642)
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the job id and exit (poll with "
                               "GET /jobs/<id>)")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          metavar="SECONDS",
                          help="--wait deadline (default 300)")
    p_submit.add_argument("--signature", action="store_true",
                          help="also print the report signature as JSON")
    p_submit.add_argument("--stats", action="store_true",
                          help="also print engine counters as JSON")

    p_history = sub.add_parser(
        "history", help="analyse the persistent run history "
                        "(docs/TELEMETRY.md)")
    hsub = p_history.add_subparsers(dest="history_command", required=True)

    def _history_common(p, with_case=True):
        p.add_argument("--db", default="repro_history.sqlite", metavar="DB",
                       help="history database (default: "
                            "repro_history.sqlite)")
        if with_case:
            p.add_argument("--case", default=None,
                           help="restrict to one case")

    h_list = hsub.add_parser("list", help="latest recorded runs")
    _history_common(h_list)
    h_list.add_argument("--limit", type=int, default=20, metavar="N",
                        help="rows to show (default 20)")

    h_show = hsub.add_parser("show", help="one run in full, as JSON")
    _history_common(h_show, with_case=False)
    h_show.add_argument("run_id", type=int, metavar="RUN_ID")

    h_trends = hsub.add_parser(
        "trends", help="per-(case, flags) timing summary")
    _history_common(h_trends)
    h_trends.add_argument("--window", type=int, default=5, metavar="N",
                          help="runs in the median window (default 5)")

    h_reg = hsub.add_parser(
        "regressions",
        help="gate: non-zero exit when the latest run of any series "
             "regressed against its median-of-last-N baseline")
    _history_common(h_reg)
    h_reg.add_argument("--window", type=int, default=5, metavar="N",
                       help="baseline runs per series (default 5)")
    h_reg.add_argument("--tolerance", default="1.5", metavar="RATIO",
                       help="allowed slowdown/prune-loss factor, e.g. "
                            "1.5 or 10x (default 1.5)")

    p_top = sub.add_parser(
        "top", help="live dashboard over a running serve daemon")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=8642)
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="poll/redraw interval (default 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit (no ANSI "
                            "clear; scripting/tests)")

    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "verify": cmd_verify,
        "dot": cmd_dot,
        "lattice": cmd_lattice,
        "examples": cmd_examples,
        "fuzz": cmd_fuzz,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "history": cmd_history,
        "top": cmd_top,
    }
    from .core.errors import VerificationError

    try:
        return handlers[args.command](args)
    except VerificationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream consumer (head, less) closed the pipe: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
