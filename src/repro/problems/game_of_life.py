"""The asynchronous, distributed Game of Life (Sections 1, 11).

The paper's second distributed application: "an asynchronous,
distributed version of the Game of Life".  Each cell of a (toroidal)
grid is its own process; there is no global generation clock.  A cell
may compute its generation-``g+1`` state as soon as it holds all of its
neighbours' generation-``g`` states -- cells far apart run genuinely
concurrently, and the resulting GEM computation is the classic
space-time causality lattice.

Events: one element per cell; ``Compute(gen, alive)`` events, each
enabled by the cell's own generation-``g-1`` Compute and its
neighbours' generation-``g-1`` Computes (the JOIN pattern of Section
8.2); generation-0 states are ``Init`` events.

Properties (:func:`life_spec`):

* ``compute-join`` -- every Compute(g) is enabled by exactly its
  neighbourhood's generation-(g-1) events (the JOIN restriction);
* ``generations-in-order`` -- each cell's element order carries
  generations 1, 2, ..., G in sequence;
* ``functional-correctness`` -- every Compute(gen, alive) matches the
  *synchronous* reference implementation (:func:`synchronous_reference`):
  asynchrony never changes the answer (confluence);
* ``all-cells-finish`` -- every cell eventually reaches generation G
  (deadlock-freedom / progress).

A mutant (``skip_neighbor_wait``) lets cells run ahead using *stale*
neighbour states -- the checker's functional-correctness restriction
catches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core import (
    ClassAnywhere,
    ElementDecl,
    EventClass,
    Eventually,
    Exists,
    ForAll,
    GroupDecl,
    Henceforth,
    Occurred,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
)
from ..sim.runtime import Action, SimpleState

Coord = Tuple[int, int]


def cell_element(x: int, y: int) -> str:
    return f"cell[{x},{y}]"


def neighbours(x: int, y: int, width: int, height: int) -> List[Coord]:
    """The 8 toroidal neighbours of (x, y)."""
    out = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            out.append(((x + dx) % width, (y + dy) % height))
    return out


def life_rule(alive: bool, living_neighbours: int) -> bool:
    """Conway's rule: birth on 3, survival on 2 or 3."""
    return living_neighbours == 3 or (alive and living_neighbours == 2)


def synchronous_reference(
    initial: Dict[Coord, bool], width: int, height: int, generations: int
) -> List[Dict[Coord, bool]]:
    """Golden model: the synchronous evolution, one dict per generation."""
    grids = [dict(initial)]
    for _g in range(generations):
        prev = grids[-1]
        nxt: Dict[Coord, bool] = {}
        for x in range(width):
            for y in range(height):
                living = sum(prev[n] for n in neighbours(x, y, width, height))
                nxt[(x, y)] = life_rule(prev[(x, y)], living)
        grids.append(nxt)
    return grids


class AsyncLifeState(SimpleState):
    """One evolving asynchronous execution of the Life grid."""

    def __init__(self, initial: Dict[Coord, bool], width: int, height: int,
                 generations: int, skip_neighbor_wait: bool = False):
        super().__init__()
        self.width = width
        self.height = height
        self.generations = generations
        self.skip_neighbor_wait = skip_neighbor_wait
        #: per-cell list of states by generation (grows as it computes)
        self.states: Dict[Coord, List[bool]] = {}
        #: per-(cell, gen) Compute/Init event, for enable edges
        self.events: Dict[Tuple[Coord, int], object] = {}
        for x in range(width):
            for y in range(height):
                alive = initial[(x, y)]
                ev = self.emit(None, cell_element(x, y), "Init",
                               {"alive": alive})
                self.states[(x, y)] = [alive]
                self.events[((x, y), 0)] = ev

    def _cell_gen(self, c: Coord) -> int:
        """Highest generation cell c has computed."""
        return len(self.states[c]) - 1

    def _can_advance(self, c: Coord) -> bool:
        g = self._cell_gen(c)
        if g >= self.generations:
            return False
        if self.skip_neighbor_wait:
            return True
        return all(
            self._cell_gen(n) >= g
            for n in neighbours(*c, self.width, self.height)
        )

    def enabled(self) -> List[Action]:
        out = []
        for x in range(self.width):
            for y in range(self.height):
                if self._can_advance((x, y)):
                    g = self._cell_gen((x, y))
                    out.append(Action(cell_element(x, y),
                                      f"gen {g + 1}", ("advance", (x, y))))
        return out

    def is_final(self) -> bool:
        return all(
            self._cell_gen((x, y)) >= self.generations
            for x in range(self.width) for y in range(self.height)
        )

    def step(self, action: Action) -> None:
        c = action.key[1]
        g = self._cell_gen(c)
        nbrs = neighbours(*c, self.width, self.height)
        # with the mutant, a neighbour may not have reached generation g
        # yet; use its latest (stale) state -- that is the bug
        living = sum(
            self.states[n][min(g, self._cell_gen(n))] for n in nbrs
        )
        alive = life_rule(self.states[c][g], living)
        enablers = [self.events[(c, g)]]
        for n in nbrs:
            enablers.append(self.events[(n, min(g, self._cell_gen(n)))])
        ev = self.emit(None, cell_element(*c), "Compute",
                       {"gen": g + 1, "alive": alive},
                       extra_enables=enablers)
        self.states[c].append(alive)
        self.events[(c, g + 1)] = ev


@dataclass(frozen=True)
class AsyncLifeProgram:
    """A :class:`~repro.sim.runtime.Program` for the asynchronous grid."""

    initial: Tuple[Tuple[Coord, bool], ...]
    width: int
    height: int
    generations: int
    skip_neighbor_wait: bool = False

    @staticmethod
    def make(initial: Dict[Coord, bool], width: int, height: int,
             generations: int, skip_neighbor_wait: bool = False
             ) -> "AsyncLifeProgram":
        return AsyncLifeProgram(tuple(sorted(initial.items())), width,
                                height, generations, skip_neighbor_wait)

    def initial_state(self) -> AsyncLifeState:
        return AsyncLifeState(dict(self.initial), self.width, self.height,
                              self.generations, self.skip_neighbor_wait)


#: A glider on a 5x5 torus -- the classic non-trivial pattern (a 4x4
#: torus is too small: the glider interacts with itself through the
#: wraparound and does not translate).
GLIDER_5X5: Dict[Coord, bool] = {
    (x, y): (x, y) in {(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)}
    for x in range(5) for y in range(5)
}


def blinker(width: int = 5, height: int = 5) -> Dict[Coord, bool]:
    """A horizontal blinker centred on the grid."""
    cx, cy = width // 2, height // 2
    on = {(cx - 1, cy), (cx, cy), (cx + 1, cy)}
    return {(x, y): (x, y) in on for x in range(width) for y in range(height)}


# -- event-model analysis -------------------------------------------------------------


def causal_cone(comp, x: int, y: int, gen: int):
    """The past light-cone of Compute(gen) at cell (x, y): every event it
    causally depends on (its temporal down-set).

    In the asynchronous grid this is the discrete analogue of a
    space-time light cone: generation g at a cell depends exactly on the
    generations g-1..0 of cells within Chebyshev distance 1..g -- an
    event-model fact the tests verify.
    """
    target = next(
        e for e in comp.events_at(cell_element(x, y))
        if (e.event_class == "Compute" and e.param("gen") == gen)
        or (gen == 0 and e.event_class == "Init")
    )
    return comp.temporal_relation.down_set([target.eid])


def cone_radius_holds(comp, x: int, y: int, gen: int, width: int,
                      height: int) -> bool:
    """Check the light-cone bound: every event in the cone of
    Compute(gen)@(x,y) lies within toroidal Chebyshev distance
    (gen - its own generation)."""

    def toroidal_delta(a: int, b: int, size: int) -> int:
        d = abs(a - b) % size
        return min(d, size - d)

    cone = causal_cone(comp, x, y, gen)
    for eid in cone:
        ev = comp.event(eid)
        cx, cy = map(int, ev.element[5:-1].split(","))
        g = ev.param("gen") if ev.event_class == "Compute" else 0
        distance = max(toroidal_delta(x, cx, width),
                       toroidal_delta(y, cy, height))
        if distance > gen - g:
            return False
    return True


# -- the GEM specification -----------------------------------------------------------


def life_spec(initial: Dict[Coord, bool], width: int, height: int,
              generations: int) -> Specification:
    """The GEM specification of the asynchronous Life problem."""
    reference = synchronous_reference(initial, width, height, generations)
    cells = [(x, y) for x in range(width) for y in range(height)]
    elements = [
        ElementDecl.make(cell_element(x, y), [
            EventClass("Init", (ParamSpec("alive", "BOOLEAN"),)),
            EventClass("Compute", (ParamSpec("gen", "INTEGER"),
                                   ParamSpec("alive", "BOOLEAN"))),
        ])
        for (x, y) in cells
    ]
    groups = [GroupDecl.make("grid", [cell_element(x, y) for x, y in cells])]

    def join_check(history, env) -> bool:
        comp = history.computation
        for (x, y) in cells:
            nbrs = set(cell_element(*n)
                       for n in neighbours(x, y, width, height))
            for ev in comp.events_at(cell_element(x, y)):
                if ev.event_class != "Compute":
                    continue
                g = ev.param("gen")
                enablers = comp.enabled_by(ev.eid)
                # exactly: own gen-1 event plus each neighbour's gen-1
                own = [e for e in enablers
                       if e.element == cell_element(x, y)]
                from_nbrs = {e.element for e in enablers
                             if e.element != cell_element(x, y)}
                if len(own) != 1 or from_nbrs != nbrs:
                    return False
                for e in enablers:
                    expected_gen = g - 1
                    actual = (e.param("gen")
                              if e.event_class == "Compute" else 0)
                    if actual != expected_gen:
                        return False
        return True

    def order_check(history, env) -> bool:
        comp = history.computation
        for (x, y) in cells:
            gens = [e.param("gen")
                    for e in comp.events_at(cell_element(x, y))
                    if e.event_class == "Compute"
                    and history.occurred(e.eid)]
            if gens != list(range(1, len(gens) + 1)):
                return False
        return True

    def correctness_check(history, env) -> bool:
        comp = history.computation
        for (x, y) in cells:
            for ev in comp.events_at(cell_element(x, y)):
                if not history.occurred(ev.eid):
                    continue
                g = ev.param("gen") if ev.event_class == "Compute" else 0
                if ev.param("alive") != reference[g][(x, y)]:
                    return False
        return True

    def finished(history, env) -> bool:
        comp = history.computation
        for (x, y) in cells:
            done = any(
                e.event_class == "Compute"
                and e.param("gen") == generations
                and history.occurred(e.eid)
                for e in comp.events_at(cell_element(x, y))
            )
            if not done:
                return False
        return True

    # All four restrictions are stated *immediately* (at the complete
    # computation) rather than through □/◇.  For the first three this
    # is an equivalence, not a weakening: each is a conjunction of
    # per-event conditions over occurred events, so holding at the
    # complete computation implies holding at every history (the □
    # forms), and the history lattice of a W×H grid is far too wide to
    # enumerate.  ``all-cells-finish`` is progress evaluated on maximal
    # executions: the scheduler yields maximal runs, where ◇finished is
    # exactly "finished at the complete computation".
    restrictions = [
        Restriction(
            "compute-join", PyPred("JOIN of neighbourhood gen-1", join_check),
            comment="each Compute(g) enabled by its gen-(g-1) neighbourhood "
                    "(the JOIN abbreviation, §8.2)",
        ),
        Restriction(
            "generations-in-order",
            PyPred("gens 1..k in element order", order_check),
        ),
        Restriction(
            "functional-correctness",
            PyPred("matches synchronous reference", correctness_check),
            comment="asynchrony never changes the answer",
        ),
        Restriction(
            "all-cells-finish",
            PyPred("every cell reached generation G", finished),
            comment="progress: the asynchronous grid completes",
        ),
    ]
    return Specification(
        f"async-life-{width}x{height}x{generations}",
        elements=elements,
        groups=groups,
        restrictions=restrictions,
    )
