"""The Readers/Writers problem, in GEM (Section 8.3), in five versions.

Structure (the paper's declarations, Section 8.3)::

    User      = ELEMENT TYPE  EVENTS Read(loc), FinishRead(info),
                                     Write(loc, info), FinishWrite
    RWControl = ELEMENT TYPE  EVENTS ReqRead, StartRead, EndRead,
                                     ReqWrite, StartWrite, EndWrite
    DataBase  = GROUP TYPE(control: RWControl, data[1..N]: Variable)
    RWProblem = GROUP(db: DataBase, {u}: SET OF User)

(The paper parameterises the control events with loc/info; the
properties verified here never inspect those parameters on control
events, so this reproduction declares them parameterless and keeps
loc/info on the user and data events, where they are checked.)

Restrictions:

* the two control chains of Section 8.3 (request → start → data access →
  end → finish), as prerequisite chains;
* the thread type π_RW labelling each transaction's event chain;
* ``writers-exclude-*`` -- the paper's Mutual Exclusion Restriction,
  checked at every history (□ over all vhs);
* data integrity -- each ``db.data[loc]`` is a Variable: Getval yields
  the last assigned value;
* per-variant priority/fairness restrictions (below);
* progress -- every request is eventually serviced and every user call
  eventually returns (checked over maximal executions).

The five versions (Section 11 reports "five versions of the
Readers/Writers problem"):

=====================  ====================================================
variant                extra restriction
=====================  ====================================================
``weak``               none (mutual exclusion + chains + data only)
``readers-priority``   pending read is serviced before a pending write
                       (Section 8.3's restriction, verbatim)
``writers-priority``   the mirror image
``fifo``               pending requests of different kinds are serviced
                       in request order (judged by the temporal order of
                       the Req events)
``no-starvation``      progress for every request of both kinds (the
                       weak progress requirement of footnote 9 applied
                       to π_RW threads)
=====================  ====================================================
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core import (
    AtControl,
    ClassAnywhere,
    ClassAt,
    ElementDecl,
    EventClass,
    EventClassRef,
    Eventually,
    Exists,
    ForAll,
    GroupDecl,
    Henceforth,
    Implies,
    Occurred,
    And,
    ParamSpec,
    Path,
    Restriction,
    SameThread,
    Specification,
    TemporallyPrecedes,
    ThreadType,
    chain,
    mutual_exclusion_of,
)
from .variable import variable_element

VARIANTS = ("weak", "readers-priority", "writers-priority", "fifo",
            "no-starvation")

#: Problem-level event class references.
REQ_READ = ClassAt(EventClassRef("db.control", "ReqRead"))
START_READ = ClassAt(EventClassRef("db.control", "StartRead"))
END_READ = ClassAt(EventClassRef("db.control", "EndRead"))
REQ_WRITE = ClassAt(EventClassRef("db.control", "ReqWrite"))
START_WRITE = ClassAt(EventClassRef("db.control", "StartWrite"))
END_WRITE = ClassAt(EventClassRef("db.control", "EndWrite"))

#: The transaction thread type π_RW (Section 8.3).
PI_RW = ThreadType("pi_RW", [
    Path.parse(
        "*.Read :: db.control.ReqRead :: db.control.StartRead :: "
        "db.data[*].Getval :: db.control.EndRead :: *.FinishRead"
    ),
    Path.parse(
        "*.Write :: db.control.ReqWrite :: db.control.StartWrite :: "
        "db.data[*].Assign :: db.control.EndWrite :: *.FinishWrite"
    ),
])


def user_element(name: str) -> ElementDecl:
    """An instance of the User element type."""
    return ElementDecl.make(name, [
        EventClass("Read", (ParamSpec("loc", "INTEGER"),)),
        EventClass("FinishRead", (ParamSpec("info", "VALUE"),)),
        EventClass("Write", (ParamSpec("loc", "INTEGER"),
                             ParamSpec("info", "VALUE"))),
        EventClass("FinishWrite"),
    ])


def rw_control_type():
    """The RWControl element type (Section 8.3)."""
    from ..core import ElementType

    return ElementType("RWControl", event_classes=[
        EventClass("ReqRead"), EventClass("StartRead"), EventClass("EndRead"),
        EventClass("ReqWrite"), EventClass("StartWrite"),
        EventClass("EndWrite"),
    ])


def control_element() -> ElementDecl:
    """The db.control element (an RWControl instance)."""
    return rw_control_type().instantiate("db.control")


def database_group_type(initial_value: object = 0):
    """``DataBase = GROUP TYPE(control: RWControl, {data[loc:1..N]}:
    SET OF Variable)`` -- the paper's declaration, as a GroupType.

    Instantiating it as ``db`` with ``n=N`` yields the ``db.control``
    element, the ``db.data[1..N]`` Variable elements (each carrying the
    last-assigned-value restriction), and the db group whose ports are
    the request events.
    """
    from ..core import GroupInstance, GroupType, qualified

    def build(name, bindings):
        n = bindings["n"]
        control = rw_control_type().instantiate(qualified(name, "control"))
        data = [
            variable_element(qualified(name, f"data[{i}]"),
                             initial=initial_value)
            for i in range(1, n + 1)
        ]
        members = [control.name] + [d.name for d in data]
        return GroupInstance(
            group=GroupDecl.make(
                name, members,
                ports=[EventClassRef(control.name, "ReqRead"),
                       EventClassRef(control.name, "ReqWrite")],
            ),
            elements=tuple([control] + data),
        )

    return GroupType("DataBase", build, params=["n"])


def readers_priority_restriction() -> Restriction:
    """Section 8.3, verbatim: if a read and a write request are pending
    at the same time, the read must be serviced before the write."""
    pending = And((AtControl("rr", START_READ), AtControl("rw", START_WRITE)))
    write_started = ForAll(
        "sw", START_WRITE,
        Implies(And((SameThread("sw", "rw"), Occurred("sw"))),
                Exists("sr", START_READ,
                       And((SameThread("sr", "rr"), Occurred("sr"))))),
    )
    formula = Henceforth(ForAll("rr", REQ_READ, ForAll(
        "rw", REQ_WRITE, Implies(pending, Henceforth(write_started)))))
    return Restriction(
        "readers-priority", formula,
        comment="pending read serviced before pending write (paper §8.3)",
    )


def writers_priority_restriction() -> Restriction:
    """The mirror image: pending write serviced before pending read."""
    pending = And((AtControl("rw", START_WRITE), AtControl("rr", START_READ)))
    read_started = ForAll(
        "sr", START_READ,
        Implies(And((SameThread("sr", "rr"), Occurred("sr"))),
                Exists("sw", START_WRITE,
                       And((SameThread("sw", "rw"), Occurred("sw"))))),
    )
    formula = Henceforth(ForAll("rw", REQ_WRITE, ForAll(
        "rr", REQ_READ, Implies(pending, Henceforth(read_started)))))
    return Restriction(
        "writers-priority", formula,
        comment="pending write serviced before pending read",
    )


def fifo_restriction() -> Restriction:
    """Pending requests of different kinds are serviced in request order.

    If ReqA temporally precedes ReqB (different kinds) and A is still
    pending, B must not start before A.
    """

    def one_direction(ra, req_a, start_a, rb, req_b, start_b, tag):
        pending_a = AtControl(ra, start_a)
        b_started = ForAll(
            "sb", start_b,
            Implies(And((SameThread("sb", rb), Occurred("sb"))),
                    Exists("sa", start_a,
                           And((SameThread("sa", ra), Occurred("sa"))))),
        )
        return Henceforth(ForAll(ra, req_a, ForAll(
            rb, req_b,
            Implies(And((TemporallyPrecedes(ra, rb), pending_a)),
                    Henceforth(b_started)))))

    formula = And((
        one_direction("rr", REQ_READ, START_READ,
                      "rw", REQ_WRITE, START_WRITE, "r-before-w"),
        one_direction("rw2", REQ_WRITE, START_WRITE,
                      "rr2", REQ_READ, START_READ, "w-before-r"),
    ))
    return Restriction(
        "fifo-service", formula,
        comment="earlier request of the other kind is serviced first",
    )


def progress_restrictions() -> List[Restriction]:
    """Footnote 9's weak progress: every request is eventually serviced,
    every service eventually completes, every user call returns."""

    def served(req_dom, start_dom, name):
        return Restriction(
            name,
            ForAll("rq", req_dom, Eventually(
                Exists("st", start_dom,
                       And((SameThread("st", "rq"), Occurred("st")))))),
            comment="weak progress (footnote 9)",
        )

    return [
        served(REQ_READ, START_READ, "every-read-request-served"),
        served(REQ_WRITE, START_WRITE, "every-write-request-served"),
        served(ClassAnywhere("Read"), ClassAnywhere("FinishRead"),
               "every-read-finishes"),
        served(ClassAnywhere("Write"), ClassAnywhere("FinishWrite"),
               "every-write-finishes"),
    ]


def mutual_exclusion_restrictions() -> List[Restriction]:
    """The paper's Mutual Exclusion Restriction: writers exclude readers,
    and writers exclude other writers (Section 8.3)."""
    return [
        Restriction(
            "writers-exclude-readers",
            Henceforth(mutual_exclusion_of(
                START_WRITE, END_WRITE, START_READ, END_READ)),
            comment="first clause of the Mutual Exclusion Restriction",
        ),
        Restriction(
            "writers-exclude-writers",
            Henceforth(mutual_exclusion_of(
                START_WRITE, END_WRITE, START_WRITE, END_WRITE)),
            comment="second clause of the Mutual Exclusion Restriction",
        ),
    ]


def chain_restrictions() -> List[Restriction]:
    """Section 8.3's two control-path restrictions (1) and (2)."""
    return [
        Restriction(
            "read-chain",
            chain(ClassAnywhere("Read"), REQ_READ, START_READ,
                  ClassAnywhere("Getval"), END_READ,
                  ClassAnywhere("FinishRead")),
            comment="u.Read → ReqRead → StartRead → Getval → EndRead → "
                    "u.FinishRead",
        ),
        Restriction(
            "write-chain",
            chain(ClassAnywhere("Write"), REQ_WRITE, START_WRITE,
                  ClassAnywhere("Assign"), END_WRITE,
                  ClassAnywhere("FinishWrite")),
            comment="u.Write → ReqWrite → StartWrite → Assign → EndWrite → "
                    "u.FinishWrite",
        ),
    ]


def rw_problem_spec(
    users: Sequence[str],
    n_locs: int = 1,
    variant: str = "weak",
    initial_value: object = 0,
) -> Specification:
    """The RWProblem specification for the given user names and variant."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
    elements: List[ElementDecl] = [user_element(u) for u in users]

    # DataBase = GROUP TYPE(control, data[1..N]); RWProblem = GROUP(db, {u})
    # -- the paper's declarations (§8.3).  db's ports are the request
    # events, the "access holes" through which users reach the database.
    db = database_group_type(initial_value).instantiate("db", n=n_locs)
    elements += list(db.elements)
    groups = [
        db.group,
        GroupDecl.make("RWProblem", ["db"] + list(users)),
    ]

    restrictions: List[Restriction] = []
    restrictions += chain_restrictions()
    restrictions += mutual_exclusion_restrictions()
    if variant == "readers-priority":
        restrictions.append(readers_priority_restriction())
    elif variant == "writers-priority":
        restrictions.append(writers_priority_restriction())
    elif variant == "fifo":
        restrictions.append(fifo_restriction())
    elif variant == "no-starvation":
        restrictions += progress_restrictions()

    return Specification(
        f"readers-writers-{variant}",
        elements=elements,
        groups=groups,
        restrictions=restrictions,
        thread_types=[PI_RW],
    )


def monitor_correspondence(monitor_name: str = "rw"):
    """The Section 9 correspondence table, as projection rules.

    PROBLEM ↔ PROGRAM::

        ReqRead     EntryStartRead:BEGIN
        StartRead   EntryStartRead:  readernum := readernum + 1
        EndRead     EntryEndRead:    readernum := readernum - 1
        ReqWrite    EntryStartWrite:BEGIN
        StartWrite  EntryStartWrite: readernum := -1
        EndWrite    EntryEndWrite:   readernum := 0

    plus the user-visible events (Read/FinishRead/Write/FinishWrite at
    caller elements) and the data accesses at ``db.data[loc]``.
    """
    from ..langs.monitor.programs import (
        SITE_ENDREAD,
        SITE_ENDWRITE,
        SITE_STARTREAD,
        SITE_STARTWRITE,
    )
    from ..verify import (
        Correspondence,
        SignificantEvents,
        by_param,
        process_from_param_or_element,
    )

    m = monitor_name
    var = f"{m}.var.readernum"

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    rules = [
        SignificantEvents("u.Read", "*", "Read", same_element, "Read",
                          params=keep("loc")),
        SignificantEvents("u.FinishRead", "*", "FinishRead", same_element,
                          "FinishRead", params=keep("info")),
        SignificantEvents("u.Write", "*", "Write", same_element, "Write",
                          params=keep("loc", "info")),
        SignificantEvents("u.FinishWrite", "*", "FinishWrite", same_element,
                          "FinishWrite"),
        SignificantEvents("ReqRead", f"{m}.entry.StartRead", "Begin",
                          "db.control", "ReqRead"),
        SignificantEvents("StartRead", var, "Assign", "db.control",
                          "StartRead", where=by_param("site", SITE_STARTREAD)),
        SignificantEvents("EndRead", var, "Assign", "db.control", "EndRead",
                          where=by_param("site", SITE_ENDREAD)),
        SignificantEvents("ReqWrite", f"{m}.entry.StartWrite", "Begin",
                          "db.control", "ReqWrite"),
        SignificantEvents("StartWrite", var, "Assign", "db.control",
                          "StartWrite",
                          where=by_param("site", SITE_STARTWRITE)),
        SignificantEvents("EndWrite", var, "Assign", "db.control", "EndWrite",
                          where=by_param("site", SITE_ENDWRITE)),
        SignificantEvents("data-read", "db.data[*", "Getval", same_element,
                          "Getval", params=keep("oldval")),
        SignificantEvents("data-write", "db.data[*", "Assign", same_element,
                          "Assign", params=keep("newval")),
    ]
    return Correspondence(
        tuple(rules), process_of=process_from_param_or_element("by")
    )


def csp_correspondence(readers, writers):
    """Significant-object mapping for the CSP grant-server solution.

    PROBLEM ↔ PROGRAM (for a reader ``r`` / writer ``w``)::

        ReqRead     r.out.End  of the "rr" send   (request received)
        StartRead   r.in.End   of the "go" receipt (grant observed)
        EndRead     r.out.Req  of the "er" send   (release initiated --
                    the Req, not the End: the Req is what the server's
                    subsequent grants causally depend on)
        ReqWrite / StartWrite / EndWrite   symmetric for writers

    plus the user-visible notes and the data accesses, as for the
    monitor.  The edge filter uses CSP process identity (element
    prefixes / ``by`` parameters).
    """
    from ..langs.csp.gemspec import csp_process_of_event
    from ..verify import Correspondence, SignificantEvents, by_param

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    rules = [
        SignificantEvents("u.Read", "*", "Read", same_element, "Read",
                          params=keep("loc")),
        SignificantEvents("u.FinishRead", "*", "FinishRead", same_element,
                          "FinishRead", params=keep("info")),
        SignificantEvents("u.Write", "*", "Write", same_element, "Write",
                          params=keep("loc", "info")),
        SignificantEvents("u.FinishWrite", "*", "FinishWrite", same_element,
                          "FinishWrite"),
        SignificantEvents("data-read", "db.data[*", "Getval", same_element,
                          "Getval", params=keep("oldval")),
        SignificantEvents("data-write", "db.data[*", "Assign", same_element,
                          "Assign", params=keep("newval")),
    ]
    for r in readers:
        rules += [
            SignificantEvents(f"ReqRead-{r}", f"{r}.out", "End",
                              "db.control", "ReqRead",
                              where=by_param("value", "rr")),
            SignificantEvents(f"StartRead-{r}", f"{r}.in", "End",
                              "db.control", "StartRead",
                              where=by_param("value", "go")),
            SignificantEvents(f"EndRead-{r}", f"{r}.out", "Req",
                              "db.control", "EndRead",
                              where=by_param("value", "er")),
        ]
    for w in writers:
        rules += [
            SignificantEvents(f"ReqWrite-{w}", f"{w}.out", "End",
                              "db.control", "ReqWrite",
                              where=by_param("value", "rw")),
            SignificantEvents(f"StartWrite-{w}", f"{w}.in", "End",
                              "db.control", "StartWrite",
                              where=by_param("value", "go")),
            SignificantEvents(f"EndWrite-{w}", f"{w}.out", "Req",
                              "db.control", "EndWrite",
                              where=by_param("value", "ew")),
        ]
    return Correspondence(tuple(rules), process_of=csp_process_of_event)


def ada_correspondence(server: str = "server"):
    """Significant-object mapping for the ADA tasking solution.

    PROBLEM ↔ PROGRAM (server task ``server``)::

        ReqRead     Call  at server.entry.StartRead   (queued request)
        StartRead   Start at server.entry.StartRead   (rendezvous begins)
        EndRead     Call  at server.entry.EndRead     (release requested)
        ReqWrite / StartWrite / EndWrite   symmetric

    The Call events make pending requests directly observable -- ADA's
    entry queues are real, which is why the priority property's
    antecedent ("a read request is pending") is crisp here.  Rendezvous
    chains cross tasks, so all projected edges are kept.
    """
    from ..verify import Correspondence, SignificantEvents

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    s = server
    rules = [
        SignificantEvents("u.Read", "*", "Read", same_element, "Read",
                          params=keep("loc")),
        SignificantEvents("u.FinishRead", "*", "FinishRead", same_element,
                          "FinishRead", params=keep("info")),
        SignificantEvents("u.Write", "*", "Write", same_element, "Write",
                          params=keep("loc", "info")),
        SignificantEvents("u.FinishWrite", "*", "FinishWrite", same_element,
                          "FinishWrite"),
        SignificantEvents("data-read", "db.data[*", "Getval", same_element,
                          "Getval", params=keep("oldval")),
        SignificantEvents("data-write", "db.data[*", "Assign", same_element,
                          "Assign", params=keep("newval")),
        SignificantEvents("ReqRead", f"{s}.entry.StartRead", "Call",
                          "db.control", "ReqRead"),
        SignificantEvents("StartRead", f"{s}.entry.StartRead", "Start",
                          "db.control", "StartRead"),
        SignificantEvents("EndRead", f"{s}.entry.EndRead", "Call",
                          "db.control", "EndRead"),
        SignificantEvents("ReqWrite", f"{s}.entry.StartWrite", "Call",
                          "db.control", "ReqWrite"),
        SignificantEvents("StartWrite", f"{s}.entry.StartWrite", "Start",
                          "db.control", "StartWrite"),
        SignificantEvents("EndWrite", f"{s}.entry.EndWrite", "Call",
                          "db.control", "EndWrite"),
    ]
    return Correspondence(tuple(rules))
