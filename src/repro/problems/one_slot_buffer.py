"""The One Slot Buffer problem (Sections 1, 11).

A buffer of capacity one: deposits and removals strictly alternate, the
value removed is the value deposited.  Built on the shared buffer
machinery (:mod:`repro.problems.buffer_base`) with capacity 1, plus an
explicit alternation restriction (with one slot, the End events must
interleave D R D R ...).

:func:`monitor_correspondence` maps the monitor solution
(:func:`repro.langs.monitor.programs.one_slot_buffer_monitor`) onto the
problem's significant objects:

=================  ====================================================
PROBLEM            PROGRAM (monitor ``osb``)
=================  ====================================================
StartDeposit       ``osb.var.slot`` Assign at site ``Deposit:store``
EndDeposit         ``osb.var.full`` Assign at site ``Deposit:fill``
StartRemove        ``osb.var.taken`` Assign at site ``Remove:take``
EndRemove          ``osb.var.full`` Assign at site ``Remove:drain``
Deposit et al.     the caller-script note events, unchanged
=================  ====================================================
"""

from __future__ import annotations

from typing import List, Sequence

from ..core import Henceforth, PyPred, Restriction, Specification
from .buffer_base import CONTROL, buffer_problem_spec


def alternation_restriction(temporal: bool = True) -> Restriction:
    """With one slot, completed operations alternate: D, R, D, R, ...

    Implied by capacity-1 plus FIFO, stated separately because it is the
    classic formulation of the problem and it gives the checker a
    direct, independently-falsifiable form.  ``temporal`` as in
    :func:`repro.problems.buffer_base.capacity_restriction`.
    """

    def check(history, env) -> bool:
        expect_deposit = True
        for ev in history.computation.events_at(CONTROL):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "EndDeposit":
                if not expect_deposit:
                    return False
                expect_deposit = False
            elif ev.event_class == "EndRemove":
                if expect_deposit:
                    return False
                expect_deposit = True
        return True

    body = PyPred("deposit-remove-alternation", check)
    return Restriction(
        "strict-alternation",
        Henceforth(body) if temporal else body,
        comment="one slot: deposits and removals strictly alternate",
    )


def one_slot_buffer_spec(
    producers: Sequence[str] = ("producer",),
    consumers: Sequence[str] = ("consumer",),
    with_progress: bool = True,
    with_exclusion: bool = False,
    temporal_safety: bool = True,
) -> Specification:
    """The One Slot Buffer problem specification."""
    base = buffer_problem_spec(
        "one-slot-buffer", 1, producers, consumers, with_progress,
        with_exclusion, temporal_safety,
    )
    return base.extended(
        restrictions=[alternation_restriction(temporal_safety)])


def monitor_correspondence(monitor_name: str = "osb"):
    """Significant-object mapping for the monitor solution."""
    from ..verify import (
        Correspondence,
        SignificantEvents,
        by_param,
        process_from_param_or_element,
    )

    m = monitor_name

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    def item_from_newval(ev):
        return {"item": ev.param("newval")}

    def item_unknown(ev):
        # the monitor does not know the transported value at this event;
        # the problem's FIFO restriction resolves it from the Start event
        return {"item": None}

    rules = [
        SignificantEvents("Deposit", "*", "Deposit", same_element, "Deposit",
                          params=keep("item")),
        SignificantEvents("DepositDone", "*", "DepositDone", same_element,
                          "DepositDone", params=keep("item")),
        SignificantEvents("Remove", "*", "Remove", same_element, "Remove"),
        SignificantEvents("RemoveDone", "*", "RemoveDone", same_element,
                          "RemoveDone", params=keep("item")),
        SignificantEvents("StartDeposit", f"{m}.var.slot", "Assign",
                          CONTROL, "StartDeposit",
                          where=by_param("site", "Deposit:store"),
                          params=item_from_newval),
        SignificantEvents("EndDeposit", f"{m}.var.full", "Assign",
                          CONTROL, "EndDeposit",
                          where=by_param("site", "Deposit:fill"),
                          params=item_unknown),
        SignificantEvents("StartRemove", f"{m}.var.taken", "Assign",
                          CONTROL, "StartRemove",
                          where=by_param("site", "Remove:take"),
                          params=item_from_newval),
        SignificantEvents("EndRemove", f"{m}.var.full", "Assign",
                          CONTROL, "EndRemove",
                          where=by_param("site", "Remove:drain"),
                          params=item_unknown),
    ]
    return Correspondence(
        tuple(rules), process_of=process_from_param_or_element("by")
    )


def csp_correspondence(producers=("producer",), consumers=("consumer",)):
    """Significant-object mapping for the CSP buffer-process solution.

    Client-side mapping: a deposit's Start/End are the producer's
    ``out.Req``/``out.End`` toward the buffer process; a removal's are
    the consumer's ``in.Req``/``in.End`` from it.  The producer knows
    the item at its Req; the consumer learns it only at its End.
    """
    from ..langs.csp.gemspec import csp_process_of_event
    from ..verify import Correspondence, SignificantEvents

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    def item_from_value(ev):
        return {"item": ev.param("value")}

    def item_unknown(ev):
        return {"item": None}

    rules = [
        SignificantEvents("Deposit", "*", "Deposit", same_element, "Deposit",
                          params=keep("item")),
        SignificantEvents("DepositDone", "*", "DepositDone", same_element,
                          "DepositDone", params=keep("item")),
        SignificantEvents("Remove", "*", "Remove", same_element, "Remove"),
        SignificantEvents("RemoveDone", "*", "RemoveDone", same_element,
                          "RemoveDone", params=keep("item")),
    ]
    for p in producers:
        rules += [
            SignificantEvents(f"StartDeposit-{p}", f"{p}.out", "Req",
                              CONTROL, "StartDeposit",
                              params=item_from_value),
            SignificantEvents(f"EndDeposit-{p}", f"{p}.out", "End",
                              CONTROL, "EndDeposit", params=item_from_value),
        ]
    for c in consumers:
        rules += [
            SignificantEvents(f"StartRemove-{c}", f"{c}.in", "Req",
                              CONTROL, "StartRemove", params=item_unknown),
            SignificantEvents(f"EndRemove-{c}", f"{c}.in", "End",
                              CONTROL, "EndRemove", params=item_from_value),
        ]
    return Correspondence(tuple(rules), process_of=csp_process_of_event)


def ada_correspondence(buffer: str = "buffer"):
    """Significant-object mapping for the ADA buffer-task solution.

    Entry-side mapping: a deposit's Start/End are the ``Call``/``End``
    events at ``buffer.entry.Deposit`` (the Call carries the item), a
    removal's are those at ``buffer.entry.Remove`` (the End's reply
    carries the item).  Rendezvous chains are inherently cross-task, so
    all projected edges are kept (no process filter).
    """
    from ..verify import Correspondence, SignificantEvents

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    def item_from_value(ev):
        return {"item": ev.param("value")}

    def item_from_reply(ev):
        return {"item": ev.param("reply")}

    def item_unknown(ev):
        return {"item": None}

    rules = [
        SignificantEvents("Deposit", "*", "Deposit", same_element, "Deposit",
                          params=keep("item")),
        SignificantEvents("DepositDone", "*", "DepositDone", same_element,
                          "DepositDone", params=keep("item")),
        SignificantEvents("Remove", "*", "Remove", same_element, "Remove"),
        SignificantEvents("RemoveDone", "*", "RemoveDone", same_element,
                          "RemoveDone", params=keep("item")),
        SignificantEvents("StartDeposit", f"{buffer}.entry.Deposit", "Call",
                          CONTROL, "StartDeposit", params=item_from_value),
        SignificantEvents("EndDeposit", f"{buffer}.entry.Deposit", "End",
                          CONTROL, "EndDeposit", params=item_unknown),
        SignificantEvents("StartRemove", f"{buffer}.entry.Remove", "Call",
                          CONTROL, "StartRemove", params=item_unknown),
        SignificantEvents("EndRemove", f"{buffer}.entry.Remove", "End",
                          CONTROL, "EndRemove", params=item_from_reply),
    ]
    return Correspondence(tuple(rules))
