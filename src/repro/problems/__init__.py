"""GEM problem specifications: the concurrency problems the paper
describes (One Slot Buffer, Bounded Buffer, five Readers/Writers
versions), its two distributed applications (database update,
asynchronous Game of Life), and the distributed-object workloads
(register, queue, lock, counter under linearizability / sequential
consistency)."""

from . import (
    bounded_buffer,
    buffer_base,
    db_update,
    game_of_life,
    objects,
    one_slot_buffer,
    readers_writers,
    ring,
    variable,
)

__all__ = [
    "variable", "readers_writers", "one_slot_buffer", "bounded_buffer",
    "buffer_base", "db_update", "game_of_life", "ring", "objects",
]
