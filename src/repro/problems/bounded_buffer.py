"""The Bounded Buffer problem (Sections 1, 11).

Capacity-N FIFO buffer: producers block when it is full, consumers when
it is empty, values are delivered in deposit order.  The specification
is the shared buffer machinery with capacity N.

:func:`monitor_correspondence` maps the monitor solution
(:func:`repro.langs.monitor.programs.bounded_buffer_monitor`):

=================  =====================================================
PROBLEM            PROGRAM (monitor ``bb``)
=================  =====================================================
StartDeposit       ``bb.var.buf[i]`` Assign at site ``Deposit:store``
EndDeposit         ``bb.var.count`` Assign at site ``Deposit:fill``
StartRemove        ``bb.var.taken`` Assign at site ``Remove:take``
EndRemove          ``bb.var.count`` Assign at site ``Remove:drain``
Deposit et al.     the caller-script note events, unchanged
=================  =====================================================
"""

from __future__ import annotations

from typing import Sequence

from ..core import Specification
from .buffer_base import CONTROL, buffer_problem_spec


def bounded_buffer_spec(
    capacity: int,
    producers: Sequence[str] = ("producer",),
    consumers: Sequence[str] = ("consumer1",),
    with_progress: bool = True,
    with_exclusion: bool = False,
    temporal_safety: bool = True,
) -> Specification:
    """The Bounded Buffer problem specification for the given capacity."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    return buffer_problem_spec(
        f"bounded-buffer-{capacity}", capacity, producers, consumers,
        with_progress, with_exclusion, temporal_safety,
    )


def monitor_correspondence(monitor_name: str = "bb"):
    """Significant-object mapping for the monitor solution."""
    from ..verify import (
        Correspondence,
        SignificantEvents,
        by_param,
        process_from_param_or_element,
    )

    m = monitor_name

    def same_element(ev):
        return ev.element

    def keep(*names):
        def extract(ev):
            return {n: ev.param(n) for n in names}
        return extract

    def item_from_newval(ev):
        return {"item": ev.param("newval")}

    def item_unknown(ev):
        # the monitor does not know the transported value at this event;
        # the problem's FIFO restriction resolves it from the Start event
        return {"item": None}

    rules = [
        SignificantEvents("Deposit", "*", "Deposit", same_element, "Deposit",
                          params=keep("item")),
        SignificantEvents("DepositDone", "*", "DepositDone", same_element,
                          "DepositDone", params=keep("item")),
        SignificantEvents("Remove", "*", "Remove", same_element, "Remove"),
        SignificantEvents("RemoveDone", "*", "RemoveDone", same_element,
                          "RemoveDone", params=keep("item")),
        SignificantEvents("StartDeposit", f"{m}.var.buf[*", "Assign",
                          CONTROL, "StartDeposit",
                          where=by_param("site", "Deposit:store"),
                          params=item_from_newval),
        SignificantEvents("EndDeposit", f"{m}.var.count", "Assign",
                          CONTROL, "EndDeposit",
                          where=by_param("site", "Deposit:fill"),
                          params=item_unknown),
        SignificantEvents("StartRemove", f"{m}.var.taken", "Assign",
                          CONTROL, "StartRemove",
                          where=by_param("site", "Remove:take"),
                          params=item_from_newval),
        SignificantEvents("EndRemove", f"{m}.var.count", "Assign",
                          CONTROL, "EndRemove",
                          where=by_param("site", "Remove:drain"),
                          params=item_unknown),
    ]
    return Correspondence(
        tuple(rules), process_of=process_from_param_or_element("by")
    )


def csp_correspondence(producers=("producer",), consumers=("consumer1",)):
    """Significant-object mapping for the CSP bounded-buffer solution.

    Identical in shape to the one-slot CSP mapping (client-side I/O
    events); see :func:`repro.problems.one_slot_buffer.csp_correspondence`.
    """
    from .one_slot_buffer import csp_correspondence as osb_csp

    return osb_csp(producers, consumers)


def ada_correspondence(buffer: str = "buffer"):
    """Significant-object mapping for the ADA buffer-task solution.

    Identical in shape to the one-slot ADA mapping (entry-side events);
    see :func:`repro.problems.one_slot_buffer.ada_correspondence`.
    """
    from .one_slot_buffer import ada_correspondence as osb_ada

    return osb_ada(buffer)
