"""Distributed-object workloads: register, queue, lock, counter.

The ROADMAP's distributed-objects family, modelled the AMECOS way
(PAPERS.md, arXiv:2405.10057): a concurrent object is observed only
through its interface events.  The shared object is one GEM *element*
(``obj``) carrying two event classes --

* ``Inv(op, arg, by)`` -- process ``by`` invokes operation ``op``;
* ``Res(op, val, by)`` -- the object answers ``val`` to ``by``;

so the element order sequences every invocation and response (the
paper's Section 5 reading: element order for interface sequencing,
enable edges for genuine causality -- here each process's program
order, which also chains every ``Inv`` directly to its ``Res``).  An
operation takes two scheduler steps, invocation and response, so
operations of different processes genuinely overlap and each
interleaving is a distinct computation.

Consistency is then a *projection property* decided by
:mod:`repro.verify.consistency` over the matched call/response pairs:
linearizability (a legal sequential witness extending program order
and real time) and sequential consistency (program order only) ride
the standard pipeline as top-level restrictions, checked once per
distinct complete computation.

Three planted non-linearizable mutants, one per stateful object:

* ``stale-read`` (register) -- reads return the value *before* the
  most recent write, so a read that starts after a write completed
  still observes the old value;
* ``dropped-dequeue`` (queue) -- the first dequeue removes the head
  but answers ``empty``: the element vanishes;
* ``double-acquire`` (lock) -- acquisition ignores the holder, so two
  processes hold the mutex at once.

Each manifests in executions the explorer always visits, and each is
caught by the ``linearizable-*`` restriction (and, for the queue, by
sequential consistency too -- the register and lock mutants remain SC,
a textbook separation the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core import (
    And,
    ClassAnywhere,
    DataEq,
    ElementDecl,
    Enables,
    EventClass,
    Exists,
    ForAll,
    Henceforth,
    Implies,
    Occurred,
    Param,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
)
from ..sim.runtime import Action, Footprint, SimpleState
from ..verify.consistency import (
    EMPTY,
    OBJECT_TYPES,
    OK,
    ObjectHistory,
    history_of,
    linearizable,
    sequentially_consistent,
)

#: The shared object's element name (one object per workload).
OBJ = "obj"

#: Planted mutant per object type (counter has no negative control).
MUTANTS: Dict[str, str] = {
    "register": "stale-read",
    "queue": "dropped-dequeue",
    "lock": "double-acquire",
}

#: scripts: ((process, ((kind, arg), ...)), ...)
Script = Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]


def standard_scripts(object_type: str) -> Script:
    """The catalog workload: two processes, two operations each."""
    if object_type == "register":
        return (("p1", (("write", 1), ("write", 2))),
                ("p2", (("read", None), ("read", None))))
    if object_type == "queue":
        return (("p1", (("enq", 1), ("enq", 2))),
                ("p2", (("deq", None), ("deq", None))))
    if object_type == "lock":
        return (("p1", (("acq", None), ("rel", None))),
                ("p2", (("acq", None), ("rel", None))))
    if object_type == "counter":
        return (("p1", (("inc", None), ("inc", None))),
                ("p2", (("inc", None), ("get", None))))
    raise ValueError(f"unknown object type {object_type!r}; "
                     f"known: {OBJECT_TYPES}")


class ObjectWorkloadState(SimpleState):
    """One execution of fixed per-process scripts against the object.

    Each process alternates an invocation step (always enabled while
    script remains) and a response step (enabled when the object can
    answer -- always, except a correct lock's ``acq`` while held).
    Effects are applied at the response, so the correct object's
    response events are its linearization points.
    """

    def __init__(self, object_type: str, scripts: Script,
                 mutant: Optional[str] = None) -> None:
        super().__init__()
        if mutant is not None and MUTANTS.get(object_type) != mutant:
            raise ValueError(f"{object_type} has no mutant {mutant!r}")
        self.object_type = object_type
        self.scripts = dict((p, list(ops)) for p, ops in scripts)
        self.procs = [p for p, _ in scripts]
        self.mutant = mutant
        self.pc = {p: 0 for p in self.procs}
        self.pending: Dict[str, Tuple[str, Any]] = {}
        # object state
        self.value: Any = None
        self.shadow: Any = None  # value before the last write (stale-read)
        self.items: List[Any] = []
        self.dropped_once = False
        self.holders: set = set()
        self.count = 0

    # -- scheduler interface ------------------------------------------------

    def _can_respond(self, p: str) -> bool:
        kind, _arg = self.pending[p]
        if self.object_type == "lock" and kind == "acq":
            return self.mutant == "double-acquire" or not self.holders
        return True

    def enabled(self) -> List[Action]:
        actions: List[Action] = []
        for p in self.procs:
            if p in self.pending:
                if self._can_respond(p):
                    kind, _ = self.pending[p]
                    actions.append(Action(p, f"res {kind}", key=(p, "res")))
            elif self.pc[p] < len(self.scripts[p]):
                kind, arg = self.scripts[p][self.pc[p]]
                actions.append(Action(p, f"inv {kind}({arg!r})",
                                      key=(p, "inv")))
        return actions

    def is_final(self) -> bool:
        return not self.pending and all(
            self.pc[p] >= len(self.scripts[p]) for p in self.procs)

    def step(self, action: Action) -> None:
        p, phase = action.key
        if phase == "inv":
            kind, arg = self.scripts[p][self.pc[p]]
            self.pc[p] += 1
            self.pending[p] = (kind, arg)
            self.emit(p, OBJ, "Inv", {"op": kind, "arg": arg, "by": p})
        else:
            kind, arg = self.pending.pop(p)
            val = self._respond(p, kind, arg)
            self.emit(p, OBJ, "Res", {"op": kind, "val": val, "by": p})

    # -- object semantics (applied at the response) --------------------------

    def _respond(self, p: str, kind: str, arg: Any) -> Any:
        if kind == "write":
            self.shadow, self.value = self.value, arg
            return OK
        if kind == "read":
            return self.shadow if self.mutant == "stale-read" else self.value
        if kind == "enq":
            self.items.append(arg)
            return OK
        if kind == "deq":
            if not self.items:
                return EMPTY
            head = self.items.pop(0)
            if self.mutant == "dropped-dequeue" and not self.dropped_once:
                self.dropped_once = True
                return EMPTY  # the head is gone, the caller never sees it
            return head
        if kind == "acq":
            self.holders.add(p)
            return OK
        if kind == "rel":
            self.holders.discard(p)
            return OK
        if kind == "inc":
            self.count += 1
            return self.count
        if kind == "get":
            return self.count
        raise ValueError(f"unknown operation {kind!r}")

    # -- partial-order reduction hooks (repro.engine.por) --------------------
    #
    # Every step appends to the shared object's element order, and that
    # order *is* the observation the consistency restrictions judge, so
    # every action honestly writes the ``("obj",)`` token (plus its own
    # process token).  All actions therefore conflict and a sound
    # ample-set reduction prunes nothing here -- these workloads exist
    # to exercise verdicts over the full interleaving census, and the
    # POR differential suite checks exactly that the reduction leaves
    # it intact.

    def por_action_footprint(self, action: Action) -> Footprint:
        p, _phase = action.key
        return Footprint(writes=frozenset({("obj",), ("proc", p)}))

    def por_remaining_footprints(self) -> Dict[str, Footprint]:
        out: Dict[str, Footprint] = {}
        for p in self.procs:
            if p in self.pending or self.pc[p] < len(self.scripts[p]):
                out[p] = Footprint(
                    writes=frozenset({("obj",), ("proc", p)}))
        return out


@dataclass(frozen=True)
class ObjectProgram:
    """A :class:`~repro.sim.runtime.Program` over one shared object."""

    object_type: str
    scripts: Script
    mutant: Optional[str] = None

    def initial_state(self) -> ObjectWorkloadState:
        return ObjectWorkloadState(self.object_type, self.scripts,
                                   self.mutant)


def object_program(object_type: str, mutant: bool = False) -> ObjectProgram:
    """The catalog workload program (optionally its planted mutant)."""
    kind = None
    if mutant:
        if object_type not in MUTANTS:
            raise ValueError(f"no planted mutant for {object_type!r}; "
                             f"mutants exist for: {sorted(MUTANTS)}")
        kind = MUTANTS[object_type]
    return ObjectProgram(object_type, standard_scripts(object_type),
                         mutant=kind)


# -- the GEM specification ----------------------------------------------------


def response_matches_invocation_restriction() -> Restriction:
    """□ every occurred Res is directly enabled by a matching Inv.

    A first-order temporal restriction (no escape hatch), so the
    compiled checker, slicer and restriction automata all get a shape
    to chew on alongside the PyPred consistency verdicts.
    """
    body = ForAll("r", ClassAnywhere("Res"), Implies(
        Occurred("r"),
        Exists("i", ClassAnywhere("Inv"), And((
            Occurred("i"),
            Enables("i", "r"),
            DataEq(Param("i", "by"), Param("r", "by")),
            DataEq(Param("i", "op"), Param("r", "op")),
        )))))
    return Restriction(
        "response-matches-invocation", Henceforth(body),
        comment="every response answers exactly its process's invocation",
    )


def linearizable_restriction(object_type: str) -> Restriction:
    """The complete computation's object history is linearizable."""

    def check(history, env) -> bool:
        return linearizable(history_of(
            history.computation, object_type, OBJ,
            occurred=history.occurred))

    return Restriction(
        f"linearizable-{object_type}",
        PyPred(f"{object_type} history linearizable", check),
        comment="a legal witness extends program order and real time",
    )


def sequentially_consistent_restriction(object_type: str) -> Restriction:
    """The complete computation's object history is SC."""

    def check(history, env) -> bool:
        return sequentially_consistent(history_of(
            history.computation, object_type, OBJ,
            occurred=history.occurred))

    return Restriction(
        f"sequentially-consistent-{object_type}",
        PyPred(f"{object_type} history sequentially consistent", check),
        comment="a legal witness extends program order",
    )


def object_spec(object_type: str,
                require: str = "linearizable") -> Specification:
    """The object's problem specification.

    ``require`` selects the consistency bar: ``"linearizable"`` ships
    both the linearizability and the (weaker) sequential-consistency
    restriction; ``"sequential"`` ships only the latter.
    """
    if require not in ("linearizable", "sequential"):
        raise ValueError(f"unknown consistency bar {require!r}")
    restrictions = [response_matches_invocation_restriction()]
    if require == "linearizable":
        restrictions.append(linearizable_restriction(object_type))
    restrictions.append(sequentially_consistent_restriction(object_type))
    return Specification(
        f"objects-{object_type}",
        elements=[ElementDecl.make(OBJ, [
            EventClass("Inv", (ParamSpec("op"), ParamSpec("arg"),
                               ParamSpec("by"))),
            EventClass("Res", (ParamSpec("op"), ParamSpec("val"),
                               ParamSpec("by"))),
        ])],
        restrictions=restrictions,
    )


def object_correspondence() -> "Correspondence":
    """Identity projection: the program emits spec-level events."""
    from ..verify.correspondence import Correspondence, SignificantEvents

    def ident(ev):
        return dict(ev.param_dict())

    return Correspondence(rules=(
        SignificantEvents("id-obj-Inv", OBJ, "Inv", OBJ, "Inv",
                          params=ident),
        SignificantEvents("id-obj-Res", OBJ, "Res", OBJ, "Res",
                          params=ident),
    ))


def object_case(object_type: str, mutant: bool = False):
    """The catalog factory: (program, problem spec, correspondence, None)."""
    return (object_program(object_type, mutant=mutant),
            object_spec(object_type),
            object_correspondence(),
            None)


# -- planted mutant histories (oracle fodder) ---------------------------------


def _replay_by_process(program: ObjectProgram,
                       order: Tuple[str, ...]) -> ObjectHistory:
    """Run the program stepping the named process each turn."""
    state = program.initial_state()
    for p in order:
        actions = [a for a in state.enabled() if a.process == p]
        assert actions, f"process {p} has no enabled action"
        state.step(actions[0])
    assert state.is_final(), "planted replay did not finish the scripts"
    return history_of(state.computation(), program.object_type, OBJ)


def planted_mutant_history(kind: str) -> ObjectHistory:
    """A complete history of the planted mutant that any sound
    linearizability checker must reject.

    ``stale-read`` and ``dropped-dequeue`` manifest on the fully
    sequential schedule (p1's script, then p2's); ``double-acquire``
    needs the second acquisition granted while the first is held.
    These are real executions of the mutant programs, extracted through
    :func:`repro.verify.consistency.history_of` -- the fuzz oracle and
    the differential battery assert both deciders call them
    non-linearizable.
    """
    if kind == "stale-read":
        return _replay_by_process(object_program("register", mutant=True),
                                  ("p1",) * 4 + ("p2",) * 4)
    if kind == "dropped-dequeue":
        return _replay_by_process(object_program("queue", mutant=True),
                                  ("p1",) * 4 + ("p2",) * 4)
    if kind == "double-acquire":
        return _replay_by_process(
            object_program("lock", mutant=True),
            ("p1", "p1", "p2", "p2", "p1", "p1", "p2", "p2"))
    raise ValueError(f"unknown planted mutant {kind!r}; "
                     f"known: {sorted(MUTANTS.values())}")


__all__ = [
    "OBJ", "MUTANTS",
    "ObjectProgram", "ObjectWorkloadState",
    "standard_scripts", "object_program",
    "object_spec", "object_correspondence", "object_case",
    "response_matches_invocation_restriction",
    "linearizable_restriction", "sequentially_consistent_restriction",
    "planted_mutant_history",
]
