"""Shared machinery for the One-Slot and Bounded Buffer problems.

Both problems (Section 11 verifies Monitor, CSP, and ADA solutions to
each) share their event vocabulary and most restrictions; they differ
only in the capacity bound.  The common shape:

* producer elements emit ``Deposit(item)`` / ``DepositDone(item)``;
* consumer elements emit ``Remove`` / ``RemoveDone(item)``;
* the buffer's control element ``buf.control`` records
  ``StartDeposit(item)``, ``EndDeposit``, ``StartRemove(item)``,
  ``EndRemove``;
* restrictions: the two control chains, FIFO value delivery, the
  capacity bound (1 for the one-slot buffer, N for the bounded buffer),
  mutual exclusion of buffer operations, and progress.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..core import (
    And,
    ClassAnywhere,
    ClassAt,
    ElementDecl,
    EventClass,
    EventClassRef,
    Eventually,
    Exists,
    ForAll,
    GroupDecl,
    Henceforth,
    Implies,
    Occurred,
    ParamSpec,
    Path,
    PyPred,
    Restriction,
    SameThread,
    Specification,
    ThreadType,
    chain,
    mutual_exclusion_of,
)

CONTROL = "buf.control"
START_DEPOSIT = ClassAt(EventClassRef(CONTROL, "StartDeposit"))
END_DEPOSIT = ClassAt(EventClassRef(CONTROL, "EndDeposit"))
START_REMOVE = ClassAt(EventClassRef(CONTROL, "StartRemove"))
END_REMOVE = ClassAt(EventClassRef(CONTROL, "EndRemove"))

#: Transaction thread types.
PI_DEPOSIT = ThreadType("pi_dep", [
    Path.parse("*.Deposit :: buf.control.StartDeposit :: "
               "buf.control.EndDeposit :: *.DepositDone"),
])
PI_REMOVE = ThreadType("pi_rem", [
    Path.parse("*.Remove :: buf.control.StartRemove :: "
               "buf.control.EndRemove :: *.RemoveDone"),
])


def producer_element(name: str) -> ElementDecl:
    return ElementDecl.make(name, [
        EventClass("Deposit", (ParamSpec("item", "VALUE"),)),
        EventClass("DepositDone", (ParamSpec("item", "VALUE"),)),
    ])


def consumer_element(name: str) -> ElementDecl:
    return ElementDecl.make(name, [
        EventClass("Remove"),
        EventClass("RemoveDone", (ParamSpec("item", "VALUE"),)),
    ])


def buffer_control_element() -> ElementDecl:
    """The buffer's control element.

    All four classes carry an ``item`` parameter; a language solution's
    correspondence supplies the value on whichever control event first
    knows it (the monitor knows it at StartRemove -- the in-lock take;
    a CSP client learns it only at EndRemove -- the communication end)
    and passes None on the other.  The FIFO restriction resolves the
    per-transaction value from either.
    """
    item = (ParamSpec("item", "VALUE"),)
    return ElementDecl.make(CONTROL, [
        EventClass("StartDeposit", item),
        EventClass("EndDeposit", item),
        EventClass("StartRemove", item),
        EventClass("EndRemove", item),
    ])


def chain_restrictions() -> List[Restriction]:
    return [
        Restriction(
            "deposit-chain",
            chain(ClassAnywhere("Deposit"), START_DEPOSIT, END_DEPOSIT,
                  ClassAnywhere("DepositDone")),
            comment="Deposit → StartDeposit → EndDeposit → DepositDone",
        ),
        Restriction(
            "remove-chain",
            chain(ClassAnywhere("Remove"), START_REMOVE, END_REMOVE,
                  ClassAnywhere("RemoveDone")),
            comment="Remove → StartRemove → EndRemove → RemoveDone",
        ),
    ]


def capacity_restriction(capacity: int, temporal: bool = True) -> Restriction:
    """Completed deposits never outrun removals by more than ``capacity``,
    and a removal never completes before its deposit.

    Walked along the control element's order: EndDeposit increments the
    occupancy, EndRemove decrements it; occupancy must stay within
    [0, capacity].

    ``temporal`` checks the invariant at every history (□).  That is the
    right strength when the projected End events are totally ordered (a
    monitor's in-lock assignments).  Rendezvous solutions (CSP, ADA)
    leave the two End events of one communication potentially
    concurrent, so a history can contain a later End while skipping an
    earlier one at the same control element -- the walk would see a
    spurious overshoot.  For those, pass ``temporal=False`` to check the
    complete computation's linearisation (still falsifies every real
    capacity bug: the full walk covers the entire execution).
    """

    def check(history, env) -> bool:
        count = 0
        for ev in history.computation.events_at(CONTROL):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "EndDeposit":
                count += 1
            elif ev.event_class == "EndRemove":
                count -= 1
            if not 0 <= count <= capacity:
                return False
        return True

    body = PyPred(f"occupancy-in-0..{capacity}", check)
    return Restriction(
        f"capacity-{capacity}",
        Henceforth(body) if temporal else body,
        comment="buffer occupancy stays within its capacity",
    )


def _transaction_items(history, start_class: str, end_class: str):
    """Per-transaction item values along the control element order.

    The k-th Start pairs with the k-th End (operations of one kind never
    overlap in a correct buffer, and the value check is only meaningful
    under that discipline).  A transaction's item is the Start's item if
    known (not None), else the End's.  A transaction whose value is not
    yet known at this history ends the comparable prefix.
    """
    starts = []
    ends = []
    for ev in history.computation.events_at(CONTROL):
        if not history.occurred(ev.eid):
            continue
        if ev.event_class == start_class:
            starts.append(ev.param("item"))
        elif ev.event_class == end_class:
            ends.append(ev.param("item"))
    items = []
    for k, start_item in enumerate(starts):
        if start_item is not None:
            items.append(start_item)
        elif k < len(ends) and ends[k] is not None:
            items.append(ends[k])
        else:
            break  # value not yet observable in this prefix
    return items


def fifo_value_restriction(temporal: bool = True) -> Restriction:
    """The j-th value removed is the j-th value deposited.

    Judged against the control element order (the buffer serialises its
    operations).  See :func:`capacity_restriction` for the
    temporal-vs-immediate distinction.
    """

    def check(history, env) -> bool:
        deposited = _transaction_items(history, "StartDeposit", "EndDeposit")
        removed = _transaction_items(history, "StartRemove", "EndRemove")
        shared = min(len(deposited), len(removed))
        return removed[:shared] == deposited[:shared]

    body = PyPred("removed-prefix-of-deposited", check)
    return Restriction(
        "fifo-values",
        Henceforth(body) if temporal else body,
        comment="values come out in the order they went in",
    )


def exclusion_restrictions() -> List[Restriction]:
    """Buffer operations exclude one another as intervals.

    This is a *monitor-shaped* strengthening: a monitor solution's
    Start/End events bracket in-lock critical sections, which never
    overlap.  Message-passing solutions (CSP, ADA) realise the buffer as
    a server process whose state accesses are serialised by construction,
    but their client-side Start/End events are genuinely concurrent
    across clients -- the interval formulation does not transplant.  It
    is therefore optional (``with_exclusion``) and enabled for monitor
    verifications only; the language-neutral buffer semantics are the
    capacity, FIFO, and alternation restrictions.
    """
    return [
        Restriction(
            "deposits-exclude-removes",
            Henceforth(mutual_exclusion_of(
                START_DEPOSIT, END_DEPOSIT, START_REMOVE, END_REMOVE)),
        ),
        Restriction(
            "deposits-exclude-deposits",
            Henceforth(mutual_exclusion_of(
                START_DEPOSIT, END_DEPOSIT, START_DEPOSIT, END_DEPOSIT)),
        ),
        Restriction(
            "removes-exclude-removes",
            Henceforth(mutual_exclusion_of(
                START_REMOVE, END_REMOVE, START_REMOVE, END_REMOVE)),
        ),
    ]


def progress_restrictions() -> List[Restriction]:
    def completes(start_dom, end_dom, name):
        return Restriction(
            name,
            ForAll("a", start_dom, Eventually(
                Exists("b", end_dom,
                       And((SameThread("b", "a"), Occurred("b")))))),
            comment="weak progress (footnote 9)",
        )

    return [
        completes(ClassAnywhere("Deposit"), ClassAnywhere("DepositDone"),
                  "every-deposit-completes"),
        completes(ClassAnywhere("Remove"), ClassAnywhere("RemoveDone"),
                  "every-remove-completes"),
    ]


def buffer_problem_spec(
    name: str,
    capacity: int,
    producers: Sequence[str],
    consumers: Sequence[str],
    with_progress: bool = True,
    with_exclusion: bool = False,
    temporal_safety: bool = True,
) -> Specification:
    """Assemble a buffer problem specification.

    ``temporal_safety`` selects □-at-every-history checking for the
    capacity and FIFO restrictions (right for monitor solutions) versus
    complete-computation checking (right for rendezvous solutions whose
    End events are pairwise concurrent); see
    :func:`capacity_restriction`.
    """
    elements: List[ElementDecl] = [producer_element(p) for p in producers]
    elements += [consumer_element(c) for c in consumers]
    elements.append(buffer_control_element())
    groups = [
        GroupDecl.make(
            "buf", [CONTROL],
            ports=[EventClassRef(CONTROL, "StartDeposit"),
                   EventClassRef(CONTROL, "StartRemove")],
        ),
    ]
    restrictions = (
        chain_restrictions()
        + [capacity_restriction(capacity, temporal_safety),
           fifo_value_restriction(temporal_safety)]
    )
    if with_exclusion:
        restrictions += exclusion_restrictions()
    if with_progress:
        restrictions += progress_restrictions()
    return Specification(
        name,
        elements=elements,
        groups=groups,
        restrictions=restrictions,
        thread_types=[PI_DEPOSIT, PI_REMOVE],
    )
