"""The distributed database update application (Sections 1, 11).

The paper reports using GEM to describe "an algorithm for performing
updates to a distributed database" and proving "lack of deadlock and
functional correctness" of it.  The concrete algorithm here is
timestamped replicated last-writer-wins update propagation -- the
classic primary-copy-free replication scheme of the era (Thomas write
rule):

* N sites each hold a replica (value, timestamp);
* clients submit updates to a home site; the site stamps the update
  with its Lamport clock (tie-broken by site index), applies it locally,
  and broadcasts it to every other site;
* a site receiving a remote update applies it iff its timestamp beats
  the replica's current timestamp (otherwise the update is *discarded*,
  with an explicit Discard event -- silence is not an observation);
* message delivery order is arbitrary -- that is the concurrency being
  verified against.

GEM modelling notes: each site is one *element* -- its events are
sequenced by the element order, not by enable edges, which are reserved
for genuine causality (Submit enables the local Apply; the local Apply
enables each remote Apply/Discard).  This is precisely the paper's
Section 5 distinction between the enable relation and the element order.

Restrictions (:func:`db_update_spec`):

* ``every-apply-caused`` -- each Apply/Discard is enabled by exactly one
  Submit or originating Apply;
* ``timestamps-monotonic-site[i]`` -- applied timestamps strictly
  increase along each site's element order (safety, at every history);
* ``convergence`` -- at the complete computation, all replicas hold the
  value of the globally-winning update (functional correctness);
* ``full-propagation`` -- every local Apply is eventually followed by a
  corresponding Apply-or-Discard at every other site (progress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core import (
    AllEvents,
    ClassAnywhere,
    ElementDecl,
    EventClass,
    Eventually,
    Exists,
    ForAll,
    GroupDecl,
    Henceforth,
    Implies,
    Occurred,
    ParamSpec,
    PyPred,
    Restriction,
    Specification,
)
from ..sim.runtime import Action, Footprint, SimpleState


def site_element(i: int) -> str:
    return f"site[{i}]"


def client_element(name: str) -> str:
    return name


@dataclass(frozen=True)
class UpdateRequest:
    """One client-submitted update: target value for the replicated datum."""

    client: str
    value: Any
    home_site: int


class DbUpdateState(SimpleState):
    """One evolving execution of the replicated-update algorithm."""

    def __init__(self, n_sites: int, requests: Sequence[UpdateRequest],
                 broken_timestamps: bool = False, lossy: bool = False):
        super().__init__()
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.n_sites = n_sites
        self.requests = list(requests)
        self.broken_timestamps = broken_timestamps
        #: MUTANT: drop every message addressed to the last site --
        #: breaks full propagation (and convergence there)
        self.lossy = lossy
        self.values: List[Any] = [None] * n_sites
        #: per-replica (lamport, site) timestamp; None before any apply
        self.stamps: List[Optional[Tuple[int, int]]] = [None] * n_sites
        self.clocks: List[int] = [0] * n_sites
        self.next_request = 0
        #: in-flight messages: (target_site, value, stamp, origin Apply event)
        self.in_flight: List[Tuple[int, Any, Tuple[int, int], object]] = []

    # -- scheduler interface ----------------------------------------------------

    def enabled(self) -> List[Action]:
        actions: List[Action] = []
        if self.next_request < len(self.requests):
            req = self.requests[self.next_request]
            actions.append(Action(req.client, f"submit {req.value!r}",
                                  ("submit",)))
        for k, (target, value, stamp, _origin) in enumerate(self.in_flight):
            actions.append(Action(site_element(target),
                                  f"deliver ts={stamp} v={value!r}",
                                  ("deliver", k)))
        return actions

    def is_final(self) -> bool:
        return self.next_request >= len(self.requests) and not self.in_flight

    def step(self, action: Action) -> None:
        if action.key[0] == "submit":
            self._submit()
        else:
            self._deliver(action.key[1])

    # -- algorithm ------------------------------------------------------------------

    def _submit(self) -> None:
        req = self.requests[self.next_request]
        self.next_request += 1
        home = req.home_site
        submit = self.emit(req.client, client_element(req.client), "Submit",
                           {"value": req.value, "site": home})
        self.clocks[home] += 1
        stamp = (self.clocks[home], home)
        apply_ev = self.emit(
            None, site_element(home), "Apply",
            {"value": req.value, "ts": list(stamp), "origin": home},
            extra_enables=[submit],
        )
        self.values[home] = req.value
        self.stamps[home] = stamp
        for other in range(self.n_sites):
            if other == home:
                continue
            if self.lossy and other == self.n_sites - 1:
                continue  # mutant: the message is silently dropped
            self.in_flight.append((other, req.value, stamp, apply_ev))

    def _deliver(self, k: int) -> None:
        target, value, stamp, origin_ev = self.in_flight.pop(k)
        # Lamport clock advance on receipt
        self.clocks[target] = max(self.clocks[target], stamp[0])
        current = self.stamps[target]
        wins = current is None or stamp > current
        if self.broken_timestamps:
            wins = True  # MUTANT: blindly apply in delivery order
        if wins:
            self.emit(None, site_element(target), "Apply",
                      {"value": value, "ts": list(stamp),
                       "origin": stamp[1]},
                      extra_enables=[origin_ev])
            self.values[target] = value
            self.stamps[target] = stamp
        else:
            self.emit(None, site_element(target), "Discard",
                      {"value": value, "ts": list(stamp),
                       "origin": stamp[1]},
                      extra_enables=[origin_ev])

    # -- partial-order reduction hooks (repro.engine.por) ------------------
    #
    # Tokens: ``("site", i)`` covers site i's element order, replica,
    # clock and any message in flight to it; ``("client", c)`` covers
    # client c's element; ``("queue",)`` covers the global request
    # sequence.  A submit is encoded as writing *every* site: it appends
    # at the home site and creates the future messages whose delivers
    # append at all the others -- symmetric footprints cannot express
    # that asymmetric future dependence, so we over-approximate.  All
    # future submits live under the reserved pseudo-process
    # ``<clients>`` (they are globally sequenced by ``next_request``, so
    # they can never be reordered before the current one anyway); its
    # remaining footprint keeps every site dirty, which pins delivers
    # until the endgame -- only once no submits remain do delivers to
    # distinct sites commute and get ample-reduced.  Delivers to the
    # *same* site share a process (the site element), so the branch
    # between them is always preserved inside the group.

    def por_action_footprint(self, action: Action) -> Footprint:
        if action.key[0] == "submit":
            req = self.requests[self.next_request]
            writes = {("queue",), ("client", req.client)}
            writes.update(("site", i) for i in range(self.n_sites))
            return Footprint(writes=frozenset(writes))
        target = self.in_flight[action.key[1]][0]
        return Footprint(writes=frozenset({("site", target)}))

    def por_remaining_footprints(self) -> Dict[str, Footprint]:
        out: Dict[str, Footprint] = {}
        if self.next_request < len(self.requests):
            writes = {("queue",)}
            writes.update(("client", r.client)
                          for r in self.requests[self.next_request:])
            writes.update(("site", i) for i in range(self.n_sites))
            out["<clients>"] = Footprint(writes=frozenset(writes))
        for target, _value, _stamp, _origin in self.in_flight:
            out.setdefault(site_element(target),
                           Footprint(writes=frozenset({("site", target)})))
        return out


@dataclass(frozen=True)
class DbUpdateProgram:
    """A :class:`~repro.sim.runtime.Program` for the update algorithm.

    Two negative-control mutants: ``broken_timestamps`` applies every
    delivery unconditionally (replicas diverge whenever messages race);
    ``lossy`` silently drops messages to the last site (full propagation
    and convergence there fail -- a *progress* violation the safety
    restrictions alone would miss).
    """

    n_sites: int
    requests: Tuple[UpdateRequest, ...]
    broken_timestamps: bool = False
    lossy: bool = False

    def initial_state(self) -> DbUpdateState:
        return DbUpdateState(self.n_sites, self.requests,
                             self.broken_timestamps, self.lossy)


def standard_requests(n_clients: int = 2, updates_per_client: int = 1,
                      n_sites: int = 2) -> Tuple[UpdateRequest, ...]:
    """A default workload: client k updates through home site k mod N."""
    out: List[UpdateRequest] = []
    for c in range(n_clients):
        for u in range(updates_per_client):
            out.append(UpdateRequest(
                client=f"client{c + 1}",
                value=100 * (c + 1) + u,
                home_site=c % n_sites,
            ))
    return tuple(out)


def winning_value(requests: Sequence[UpdateRequest], n_sites: int) -> Any:
    """The value every replica must converge to.

    Clients submit sequentially (one scheduler action each), so the k-th
    submission through site s gets site s's k-th-at-that-point clock
    value; the winner is the max (lamport, site) stamp.  We recompute it
    by replaying the stamping deterministically.
    """
    clocks = [0] * n_sites
    best_stamp: Optional[Tuple[int, int]] = None
    best_value: Any = None
    for req in requests:
        clocks[req.home_site] += 1
        stamp = (clocks[req.home_site], req.home_site)
        if best_stamp is None or stamp > best_stamp:
            best_stamp = stamp
            best_value = req.value
    return best_value


# -- the GEM specification ---------------------------------------------------------


def _stamp(ev) -> Tuple[int, int]:
    return tuple(ev.param("ts"))


def timestamps_monotonic_restriction(site: str) -> Restriction:
    def check(history, env) -> bool:
        last: Optional[Tuple[int, int]] = None
        for ev in history.computation.events_at(site):
            if not history.occurred(ev.eid) or ev.event_class != "Apply":
                continue
            stamp = _stamp(ev)
            if last is not None and stamp <= last:
                return False
            last = stamp
        return True

    return Restriction(
        f"timestamps-monotonic-{site}",
        Henceforth(PyPred(f"ts increase @ {site}", check)),
        comment="applied timestamps strictly increase (Thomas write rule)",
    )


def convergence_restriction(n_sites: int, expected_value: Any) -> Restriction:
    """All replicas end up holding the globally winning value."""

    def check(history, env) -> bool:
        comp = history.computation
        for i in range(n_sites):
            applies = [e for e in comp.events_at(site_element(i))
                       if e.event_class == "Apply"]
            if not applies:
                return False
            final = max(applies, key=_stamp)
            # the replica's final value is the last applied in element
            # order; monotonicity makes that also the max-stamp one
            last_applied = applies[-1]
            if last_applied.param("value") != expected_value:
                return False
            if final.param("value") != expected_value:
                return False
        return True

    return Restriction(
        "convergence",
        PyPred("all replicas hold the winning value", check),
        comment="functional correctness: last-writer-wins convergence",
    )


def every_apply_caused_restriction() -> Restriction:
    """Each Apply/Discard has exactly one enabling Submit or Apply."""

    def check(history, env) -> bool:
        comp = history.computation
        for ev in comp.events:
            if ev.event_class not in ("Apply", "Discard"):
                continue
            enablers = comp.enabled_by(ev.eid)
            if len(enablers) != 1:
                return False
            if enablers[0].event_class not in ("Submit", "Apply"):
                return False
        return True

    return Restriction(
        "every-apply-caused",
        PyPred("Apply/Discard enabled by exactly one Submit/Apply", check),
        comment="nondeterministic prerequisite {Submit, Apply} → Apply (§8.2)",
    )


def full_propagation_restriction(n_sites: int) -> Restriction:
    """Every originating Apply eventually reaches every other site."""

    def reached_everywhere(history, env) -> bool:
        comp = history.computation
        origin = env["a"]
        if origin.param("origin") != int(origin.element[5:-1]):
            return True  # a remote apply, not an originating one
        stamp = origin.param("ts")
        for i in range(n_sites):
            el = site_element(i)
            if el == origin.element:
                continue
            landed = any(
                history.occurred(e.eid)
                and e.event_class in ("Apply", "Discard")
                and e.param("ts") == stamp
                for e in comp.events_at(el)
            )
            if not landed:
                return False
        return True

    return Restriction(
        "full-propagation",
        ForAll("a", ClassAnywhere("Apply"),
               Eventually(PyPred("update landed at every site",
                                 reached_everywhere))),
        comment="progress: no update is lost in flight",
    )


def db_update_spec(
    n_sites: int,
    requests: Sequence[UpdateRequest],
) -> Specification:
    """The GEM specification of the distributed update problem."""
    clients = sorted({r.client for r in requests})
    elements: List[ElementDecl] = [
        ElementDecl.make(client_element(c), [
            EventClass("Submit", (ParamSpec("value", "VALUE"),
                                  ParamSpec("site", "INTEGER"))),
        ])
        for c in clients
    ]
    site_names = [site_element(i) for i in range(n_sites)]
    for s in site_names:
        elements.append(ElementDecl.make(s, [
            EventClass("Apply", (ParamSpec("value", "VALUE"),
                                 ParamSpec("ts", "VALUE"),
                                 ParamSpec("origin", "INTEGER"))),
            EventClass("Discard", (ParamSpec("value", "VALUE"),
                                   ParamSpec("ts", "VALUE"),
                                   ParamSpec("origin", "INTEGER"))),
        ]))
    # clients reach the database through Apply events -- the ports of
    # the database group (the paper's data-abstraction pattern)
    from ..core import EventClassRef

    groups = [GroupDecl.make(
        "database", site_names,
        ports=[EventClassRef(s, "Apply") for s in site_names],
    )]
    restrictions: List[Restriction] = [
        every_apply_caused_restriction(),
        convergence_restriction(n_sites, winning_value(requests, n_sites)),
        full_propagation_restriction(n_sites),
    ]
    restrictions += [timestamps_monotonic_restriction(s) for s in site_names]
    return Specification(
        "distributed-db-update",
        elements=elements,
        groups=groups,
        restrictions=restrictions,
    )


def identity_correspondence(
    n_sites: int,
    requests: Sequence[UpdateRequest],
) -> "Correspondence":
    """Identity mapping: the program *is* its own significant object.

    The db-update program is written directly at the specification's
    level of abstraction (one element per client and site, the same
    event classes), so verification projects each computation onto
    itself: every Submit/Apply/Discard is significant, parameters pass
    through unchanged.  This is the degenerate -- but perfectly legal --
    corner of the paper's Section 9 correspondence machinery, and it
    makes the case a good tracing workload: everything the checker does
    is attributable to the problem restrictions alone.
    """
    from ..verify.correspondence import Correspondence, SignificantEvents

    def ident(ev):
        return dict(ev.param_dict())

    rules: List[SignificantEvents] = [
        SignificantEvents(
            name=f"id-{client_element(c)}-Submit",
            element=client_element(c), event_class="Submit",
            target_element=client_element(c), target_class="Submit",
            params=ident,
        )
        for c in sorted({r.client for r in requests})
    ]
    for i in range(n_sites):
        el = site_element(i)
        for cls in ("Apply", "Discard"):
            rules.append(SignificantEvents(
                name=f"id-{el}-{cls}", element=el, event_class=cls,
                target_element=el, target_class=cls, params=ident,
            ))
    return Correspondence(rules=tuple(rules))
