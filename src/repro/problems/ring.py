"""Mark-budget workloads: early-violation stress cases for the DFA route.

Two related workloads built around one restriction, ``ring-mark-budget``:

    □ ∀x,y,z : Mark .  (distinct(x,y,z) ∧ x.w = y.w = z.w) ⊃
                       ¬(occurred(x) ∧ occurred(y) ∧ occurred(z))

"no worker stamps three marks" -- three quantifiers make every direct
check cubic in the number of marks, while the body's shape (history-
independent guard, monotone consequent under negation) is exactly what
:mod:`repro.core.automata` compiles to a box-reject automaton.  When the
budget is exceeded, *every* branch of the exploration violates the
restriction within a handful of steps, so the automaton monitor decides
the whole subtree from a tiny prefix and the checker skips the cubic
walk on every distinct computation.

* :class:`RingProgram` -- the pure scheduler workload: ``workers``
  processes each stamp ``rounds`` marks at one shared ``ring`` element.
  Every interleaving is a distinct partial order (the shared element
  totally orders the marks), so the run census is the binomial
  ``C(workers*rounds, rounds)`` and checking dominates exploration.
  Used by the ``dfa:early-violation`` benchmark row.
* :func:`tally_system` (in :mod:`repro.langs.monitor.programs`) plus
  :func:`tally_spec` / :func:`mark_correspondence` here -- the same
  restriction over a Monitor-language system verified end to end
  through projection.  The mutant stamps every mark with the worker's
  name (three same-stamp marks: illegal everywhere, early); the correct
  variant stamps each round uniquely.  The ``monitor-tally-mesa``
  catalog case and the ``dfa:noeager`` benchmark row use it.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.element import ElementDecl
from ..core.event import EventClass, ParamSpec
from ..core.formula import (
    And,
    ClassAnywhere,
    DataEq,
    EventEq,
    ForAll,
    Henceforth,
    Implies,
    Not,
    Occurred,
    Param,
    Restriction,
)
from ..core.specification import Specification
from ..sim.runtime import Action, SimpleState

MARK = ClassAnywhere("Mark")

#: Event class shared by both workloads: one mark, stamped ``w``.
MARK_CLASS = EventClass("Mark", (ParamSpec("w"),))


def ring_restriction() -> Restriction:
    """□ "no three distinct marks share a stamp" (violated early or never)."""
    distinct = And((Not(EventEq("x", "y")), Not(EventEq("y", "z")),
                    Not(EventEq("x", "z"))))
    same_stamp = And((DataEq(Param("x", "w"), Param("y", "w")),
                      DataEq(Param("y", "w"), Param("z", "w"))))
    all_occurred = And((Occurred("x"), Occurred("y"), Occurred("z")))
    body = ForAll("x", MARK, ForAll("y", MARK, ForAll("z", MARK, Implies(
        And((distinct, same_stamp)), Not(all_occurred)))))
    return Restriction(
        "ring-mark-budget", Henceforth(body),
        comment="no worker stamps three marks",
    )


def ring_spec(element_names: Iterable[str] = ("ring",)) -> Specification:
    """The mark-budget specification over the given mark-bearing elements."""
    return Specification(
        "ring-marks",
        elements=[ElementDecl(name, (MARK_CLASS,))
                  for name in element_names],
        restrictions=[ring_restriction()],
    )


class RingState(SimpleState):
    """``workers`` processes each stamping ``rounds`` marks at ``ring``."""

    def __init__(self, workers: int, rounds: int) -> None:
        super().__init__()
        self.left = {f"W{i}": rounds for i in range(workers)}

    def enabled(self) -> List[Action]:
        return [Action(p, "mark", key=p)
                for p, n in sorted(self.left.items()) if n > 0]

    def step(self, action: Action) -> None:
        self.left[action.process] -= 1
        self.emit(action.process, "ring", "Mark", {"w": action.process})

    def is_final(self) -> bool:
        return all(n == 0 for n in self.left.values())


class RingProgram:
    """Factory of fresh :class:`RingState` initial states."""

    def __init__(self, workers: int = 2, rounds: int = 5) -> None:
        self.workers = workers
        self.rounds = rounds

    def initial_state(self) -> RingState:
        return RingState(self.workers, self.rounds)


def tally_spec(workers: int = 2) -> Specification:
    """The mark-budget spec over the tally system's worker elements."""
    return ring_spec(f"worker{i + 1}" for i in range(workers))


def mark_correspondence():
    """Projection keeping only the workers' ``Mark`` events (with stamps)."""
    from ..verify import (
        Correspondence,
        SignificantEvents,
        process_from_param_or_element,
    )

    def same_element(ev):
        return ev.element

    def keep_stamp(ev):
        return {"w": ev.param("w")}

    rules = (SignificantEvents("mark", "*", "Mark", same_element, "Mark",
                               params=keep_stamp),)
    return Correspondence(rules,
                          process_of=process_from_param_or_element("by"))
