"""The Variable element type (Sections 4, 6, 8.2).

The paper's running example: a variable is an element with ``Assign``
and ``Getval`` event classes; making it an element asserts "a lock on
access to variable Var" -- all accesses are totally ordered whether or
not they are causally related.  Its semantic restriction (Section 8.2):

    a value retrieval event Getval must yield the value last assigned

formally: for every ``getval``, there is an ``assign`` with
``assign ⇒ getval``, no other assign between them, and
``assign.newval = getval.oldval``.

:func:`variable_element_type` builds the generic type;
:func:`integer_variable_type` is the refinement of Section 6;
:func:`variable_semantics_restriction` is the last-assigned-value rule
(including the initial-value case the paper's formula leaves implicit).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import (
    ElementDecl,
    ElementType,
    EventClass,
    ParamSpec,
    PyPred,
    Restriction,
)

_SENTINEL = object()


def variable_semantics_restriction(
    element: str,
    initial: Any = _SENTINEL,
    value_param: str = "newval",
    read_param: str = "oldval",
) -> Restriction:
    """Getval yields the value last assigned (or ``initial`` before any).

    Checked against the element order at ``element``: walk the events in
    sequence, track the current value, require every occurred Getval to
    report it.  When ``initial`` is omitted, a Getval before the first
    Assign is a violation (the paper's formula requires an enabling
    assign to exist).
    """

    def check(history, env) -> bool:
        current = initial
        for ev in history.computation.events_at(element):
            if not history.occurred(ev.eid):
                continue
            if ev.event_class == "Assign":
                current = ev.param(value_param)
            elif ev.event_class == "Getval":
                if current is _SENTINEL:
                    return False
                if ev.param(read_param) != current:
                    return False
        return True

    return Restriction(
        f"{element}-getval-yields-last-assign",
        PyPred(f"last-assign@{element}", check),
        comment="Getval must yield the value last assigned (paper §8.2)",
    )


def variable_element_type() -> ElementType:
    """The generic Variable element type of Section 6."""
    return ElementType(
        "Variable",
        event_classes=[
            EventClass("Assign", (ParamSpec("newval", "VALUE"),)),
            EventClass("Getval", (ParamSpec("oldval", "VALUE"),)),
        ],
    )


def integer_variable_type() -> ElementType:
    """IntegerVariable = Variable with VALUE refined to INTEGER (§6)."""
    return variable_element_type().refined(
        "IntegerVariable", substitute={"VALUE": "INTEGER"}
    )


def variable_element(
    name: str, initial: Any = _SENTINEL, integer: bool = False
) -> ElementDecl:
    """A variable element declaration carrying its semantics restriction."""
    base = integer_variable_type() if integer else variable_element_type()
    decl = base.instantiate(name)
    return decl.with_restrictions(
        [variable_semantics_restriction(name, initial)]
    )
