"""Checker/engine/POR benchmarks behind ``repro bench`` (docs/PERF.md).

Measures the compiled restriction checker (:mod:`repro.core.compile`)
against the reference lattice interpreter on the S1
chains-with-cross-talk workload (the same shape as
``benchmarks/bench_checker_scaling.py``), the computation slice
(:mod:`repro.core.slice`, S9 -- slice-routed vs walked lattice
checking on a regular implication that holds everywhere, so the walk
cannot short-circuit), one end-to-end engine
verification, the serve daemon's warm-resubmission win over the
per-invocation engine path (:mod:`repro.serve`, S8 -- a real daemon on
an ephemeral port, signatures asserted identical to one-shot), and the
partial-order reduction's schedule savings (:mod:`repro.engine.por`,
S7 -- reduced vs full exploration on the unreduced readers/writers and
bounded-buffer monitors), and writes the results as JSON.  The JSON file doubles as the committed regression
baseline (``BENCH_checker.json``): when the output file already
exists, the run first *gates* against it -- a gated workload whose
ratio (compiled-vs-interpreted speedup, or full-vs-reduced schedule
count for the ``por:*`` rows) drops by more than ``GATE_TOLERANCE``
fails the run and leaves the baseline untouched.  Comparing *ratios*
rather than wall-clock seconds keeps the gate meaningful across
machines of different speeds -- the POR rows' ratios are run counts,
deterministic on any machine.

Every measurement is a correctness check before it is a timer: the
compiled verdict is asserted equal to the interpreted one, the engine
reports signature-equal, and the reduced exploration's computation
fingerprint set equal to the full one's, before any number is
reported.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

#: Gated workloads may lose at most this fraction of their baseline
#: compiled-vs-interpreted speedup ratio (CI ``bench-smoke``).
GATE_TOLERANCE = 0.25

#: (name, chains, length, gated).  Small sizes are reported for the
#: scaling picture but not gated: there the one-off compile/bind cost
#: is comparable to the walk itself, so the ratio is noise-dominated.
CHECKER_WORKLOADS: Tuple[Tuple[str, int, int, bool], ...] = (
    ("checker:2x10", 2, 10, False),
    ("checker:2x20", 2, 20, True),
    ("checker:3x10", 3, 10, True),
)
QUICK_CHECKER_WORKLOADS = CHECKER_WORKLOADS[:2]


def build_chain_workload(chains: int, length: int, cross_every: int = 2):
    """P chains of L ``Step`` events with every k-th event
    cross-enabling its neighbour chain (the S1 bench shape)."""
    from .core import ComputationBuilder

    b = ComputationBuilder()
    rows: List[list] = []
    for c in range(chains):
        row = []
        prev = None
        for i in range(length):
            ev = b.add_event(f"chain{c}", "Step", {"i": i})
            if prev is not None:
                b.add_enable(prev, ev)
            prev = ev
            row.append(ev)
        rows.append(row)
    for c in range(chains - 1):
        for i in range(0, length, cross_every):
            b.add_enable(rows[c][i], rows[c + 1][i])
    return b.freeze()


def safety_restriction():
    """The S1 safety formula: □ ∀x:chain0.Step (occurred(x) ⊃
    ∃y:chain0.Step occurred(y)) -- non-monotone body, so both modes
    genuinely walk the lattice."""
    from .core import (Exists, ForAll, Henceforth, Implies, Occurred,
                       Restriction)

    return Restriction("s1-safety", Henceforth(ForAll(
        "x", "chain0.Step",
        Implies(Occurred("x"), Exists("y", "chain0.Step", Occurred("y"))))))


def _best_of(repeats: int, fn: Callable[[], object]) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_checker_bench(quick: bool = False, repeats: int = 3,
                      history_cap: int = 5_000_000) -> Dict[str, dict]:
    """Compiled vs interpreted lattice checking per S1 workload."""
    from .core.checker import check_restriction

    restriction = safety_restriction()
    workloads = QUICK_CHECKER_WORKLOADS if quick else CHECKER_WORKLOADS
    results: Dict[str, dict] = {}
    for name, chains, length, gated in workloads:
        comp = build_chain_workload(chains, length)
        lattice_s, lat = _best_of(repeats, lambda: check_restriction(
            comp, restriction, temporal_mode="lattice",
            history_cap=history_cap))

        def compiled_once():
            # a fresh computation per repeat so the timing includes the
            # full compile + bind + walk (no warm bitmask tables)
            fresh = build_chain_workload(chains, length)
            return check_restriction(fresh, restriction,
                                     temporal_mode="compiled",
                                     history_cap=history_cap)

        compiled_s, com = _best_of(repeats, compiled_once)
        assert (lat.holds, lat.detail) == (com.holds, com.detail), (
            f"{name}: compiled verdict {com} != interpreted {lat}")
        results[name] = {
            "chains": chains,
            "length": length,
            "gate": gated,
            "lattice_s": round(lattice_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(lattice_s / compiled_s, 2),
        }
    return results


#: (name, chains, length, gated) for the ``slice:`` rows; same sizes
#: and gating policy as the checker rows.
SLICE_WORKLOADS: Tuple[Tuple[str, int, int, bool], ...] = (
    ("slice:2x10", 2, 10, False),
    ("slice:2x20", 2, 20, True),
    ("slice:3x10", 3, 10, True),
)
QUICK_SLICE_WORKLOADS = SLICE_WORKLOADS[:2]


def slice_restriction():
    """The S9 implication formula: □ (∃y:chain1.Step occurred(y) ⊃
    ∃x:chain0.Step occurred(x)).  It holds on every chain workload
    (chain1 is rooted in a chain0 cross-enable), so the lattice walk
    must visit the whole history lattice while the slice certifies the
    same verdict from a linear union of cubes."""
    from .core import Exists, Henceforth, Implies, Occurred, Restriction

    return Restriction("s9-implication", Henceforth(Implies(
        Exists("y", "chain1.Step", Occurred("y")),
        Exists("x", "chain0.Step", Occurred("x")))))


def run_slice_bench(quick: bool = False, repeats: int = 3,
                    history_cap: int = 5_000_000) -> Dict[str, dict]:
    """Slice-routed vs walked lattice checking per S9 workload.

    Correctness before timing: the sliced outcome must carry slice
    provenance (a silent walk fallback would time the wrong thing) and
    equal the walked verdict and detail.
    """
    from .core.checker import check_restriction
    from .core.slice import classify_restriction

    restriction = slice_restriction()
    workloads = QUICK_SLICE_WORKLOADS if quick else SLICE_WORKLOADS
    results: Dict[str, dict] = {}
    for name, chains, length, gated in workloads:
        comp = build_chain_workload(chains, length)
        kind = classify_restriction(comp, restriction)
        assert kind == "linear", f"{name}: expected a linear slice, {kind}"
        walk_s, walk = _best_of(repeats, lambda: check_restriction(
            comp, restriction, temporal_mode="lattice",
            history_cap=history_cap))

        def slice_once():
            # a fresh computation per repeat so the timing includes the
            # classification and cube construction (no warm slicer)
            fresh = build_chain_workload(chains, length)
            return check_restriction(fresh, restriction,
                                     temporal_mode="lattice",
                                     use_slice=True,
                                     history_cap=history_cap)

        sliced_s, sliced = _best_of(repeats, slice_once)
        assert sliced.provenance == "slice", (
            f"{name}: slice fell back to the walk")
        assert (walk.holds, walk.detail) == (sliced.holds, sliced.detail), (
            f"{name}: sliced verdict {sliced} != walked {walk}")
        results[name] = {
            "chains": chains,
            "length": length,
            "gate": gated,
            "lattice_s": round(walk_s, 6),
            "sliced_s": round(sliced_s, 6),
            "speedup": round(walk_s / sliced_s, 2),
        }
    return results


def run_engine_bench(repeats: int = 1) -> Dict[str, dict]:
    """End-to-end ``verify_program`` compiled vs interpreted on the
    monitor bounded-buffer case (report signatures must match)."""
    from .langs.monitor import (MonitorProgram, bounded_buffer_system,
                                monitor_program_spec)
    from .problems import bounded_buffer
    from .verify import verify_program

    system = bounded_buffer_system(capacity=2, items=(1, 2, 3))
    args = (MonitorProgram(system),
            bounded_buffer.bounded_buffer_spec(2),
            bounded_buffer.monitor_correspondence("bb"))
    kwargs = {"program_spec": monitor_program_spec(system)}

    lattice_s, lat = _best_of(repeats, lambda: verify_program(
        *args, temporal_mode="lattice", **kwargs))
    compiled_s, com = _best_of(repeats, lambda: verify_program(
        *args, temporal_mode="compiled", **kwargs))
    assert lat.signature() == com.signature(), (
        "engine: compiled report signature differs from interpreted")
    return {
        "engine:monitor-bb": {
            "gate": False,
            "lattice_s": round(lattice_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(lattice_s / compiled_s, 2),
        }
    }


#: Minimum one-shot-vs-warm-daemon ratio for the gated ``serve:warm``
#: row -- an absolute floor asserted on every run, independent of the
#: baseline-relative gate.  A resident daemon whose warm resubmission
#: is not at least this much faster than re-running the engine from
#: scratch is not earning its memory footprint.
SERVE_GATE_MIN = 3.0


def run_serve_bench(repeats: int = 3) -> Dict[str, dict]:
    """Warm-daemon resubmission vs the per-invocation engine path.

    Boots a real daemon (background thread, ephemeral port), submits
    the monitor bounded-buffer case cold, then resubmits it warm
    (``repeats`` times, best-of): the warm run answers from the hot
    resident state and the shared result cache, so its wall time is
    exploration plus cache replay -- no spec-plan compilation, no
    restriction checks.  The daemon's report signature is asserted
    byte-identical to the one-shot engine's before any number is
    reported, and ``serve:warm`` must beat the one-shot time by
    :data:`SERVE_GATE_MIN` on every run.
    """
    from .serve.daemon import start_in_thread
    from .serve.client import ServeClient
    from .serve.protocol import signature_json
    from .langs.monitor import (MonitorProgram, bounded_buffer_system,
                                monitor_program_spec)
    from .problems import bounded_buffer
    from .verify import verify_program

    system = bounded_buffer_system(capacity=2, items=(1, 2, 3))
    oneshot_s, report = _best_of(repeats, lambda: verify_program(
        MonitorProgram(system),
        bounded_buffer.bounded_buffer_spec(2),
        bounded_buffer.monitor_correspondence("bb"),
        program_spec=monitor_program_spec(system)))

    handle = start_in_thread(jobs=1, job_workers=1)
    try:
        client = ServeClient(port=handle.port)
        spec = {"case": "monitor-bounded-buffer"}

        t0 = time.perf_counter()
        cold = client.verify(spec, timeout=300)
        cold_s = time.perf_counter() - t0
        assert cold["state"] == "done", f"cold job ended {cold['state']}"

        def warm_once():
            snap = client.verify(spec, timeout=300)
            assert snap["state"] == "done", f"warm job ended {snap['state']}"
            return snap

        warm_s, warm = _best_of(repeats, warm_once)
    finally:
        handle.stop()

    expected = signature_json(report.signature())
    for label, snap in (("cold", cold), ("warm", warm)):
        assert snap["result"]["signature"] == expected, (
            f"serve: {label} daemon signature differs from the one-shot "
            f"engine's")
    assert warm["result"]["stats"]["checks_performed"] == 0, (
        "serve: warm resubmission recomputed outcomes instead of "
        "replaying the shared cache")
    warm_speedup = oneshot_s / warm_s
    assert warm_speedup >= SERVE_GATE_MIN, (
        f"serve:warm: {warm_speedup:.1f}x over the per-invocation path "
        f"is below the {SERVE_GATE_MIN:.0f}x floor")
    return {
        "serve:cold": {
            "gate": False,
            "oneshot_s": round(oneshot_s, 6),
            "serve_s": round(cold_s, 6),
            "speedup": round(oneshot_s / cold_s, 2),
        },
        "serve:warm": {
            "gate": True,
            "oneshot_s": round(oneshot_s, 6),
            "serve_s": round(warm_s, 6),
            "speedup": round(warm_speedup, 2),
        },
    }


#: Minimum full-vs-reduced schedule ratio for gated ``por:*`` rows --
#: an absolute floor asserted on every run, independent of the
#: baseline-relative gate.
POR_GATE_MIN = 3.0

#: (name, builder args, gated).  The ablation (``eager_reductions=
#: False``) configurations: with eager reductions on, the monitor
#: explorations are already canonical (runs == distinct computations)
#: and a sound POR has nothing to prune -- the reduction's value shows
#: on the raw interleaving explosion.  Sizes are the largest whose
#: *full* exploration stays in seconds (the S3 bb depth itself runs to
#: millions of schedules unreduced).
POR_WORKLOADS: Tuple[Tuple[str, str, bool], ...] = (
    ("por:readers-writers", "rw", True),
    ("por:bounded-buffer", "bb", True),
)
QUICK_POR_WORKLOADS = POR_WORKLOADS[:1]


def _por_program(kind: str):
    from .langs.monitor import (MonitorProgram, bounded_buffer_system,
                                readers_writers_system)

    if kind == "rw":
        return MonitorProgram(readers_writers_system(1, 1),
                              eager_reductions=False)
    return MonitorProgram(bounded_buffer_system(capacity=2, items=(1, 2)),
                          eager_reductions=False)


def run_por_bench(quick: bool = False,
                  max_runs: int = 200_000) -> Dict[str, dict]:
    """Full vs POR-reduced exploration: schedule counts and wall time.

    Asserts the soundness contract before reporting: identical
    computation-fingerprint sets, and at least :data:`POR_GATE_MIN`
    times fewer schedules on every gated workload.
    """
    from .engine.por import AmpleSelector
    from .sim.scheduler import explore

    workloads = QUICK_POR_WORKLOADS if quick else POR_WORKLOADS
    results: Dict[str, dict] = {}
    for name, kind, gated in workloads:
        t0 = time.perf_counter()
        full = list(explore(_por_program(kind), max_runs=max_runs))
        full_s = time.perf_counter() - t0
        selector = AmpleSelector()
        t0 = time.perf_counter()
        reduced = list(explore(_por_program(kind), max_runs=max_runs,
                               por=selector))
        por_s = time.perf_counter() - t0
        full_fps = {r.computation.stable_fingerprint() for r in full}
        por_fps = {r.computation.stable_fingerprint() for r in reduced}
        assert full_fps == por_fps, (
            f"{name}: reduced fingerprint set differs from full")
        ratio = len(full) / len(reduced)
        assert not gated or ratio >= POR_GATE_MIN, (
            f"{name}: reduction {ratio:.1f}x is below the "
            f"{POR_GATE_MIN:.0f}x floor")
        results[name] = {
            "gate": gated,
            "full_runs": len(full),
            "por_runs": len(reduced),
            "pruned_branches": selector.pruned,
            "full_s": round(full_s, 6),
            "por_s": round(por_s, 6),
            "speedup": round(ratio, 2),
        }
    return results


#: Minimum no-monitor-vs-monitored explore+check ratio for the gated
#: ``dfa:early-violation`` row -- an absolute floor asserted on every
#: run, independent of the baseline-relative gate.
DFA_GATE_MIN = 5.0

#: Minimum end-to-end ``verify_program`` ratio (dfa off vs on) for the
#: gated ``dfa:noeager`` row.  Smaller than the synthetic row's floor
#: because a full verification also pays exploration, projection and
#: legality checking on both sides.
DFA_NOEAGER_GATE_MIN = 1.2


def run_dfa_bench(quick: bool = False) -> Dict[str, dict]:
    """Restriction-automata rows (:mod:`repro.core.automata`, S11).

    ``dfa:early-violation`` -- the ring mark-budget workload
    (:mod:`repro.problems.ring`): every branch violates the cubic □
    within a handful of steps, so the monitor decides whole subtrees
    from tiny prefixes and the per-computation check skips the walk.
    Explore + check-every-distinct-computation, with and without the
    monitor; fingerprint sets and verdicts are asserted equal before
    the ratio is reported, and the ratio must clear
    :data:`DFA_GATE_MIN` on every run.

    ``dfa:noeager`` (full mode only) -- the same restriction end to
    end: ``verify_program`` on the mutant ``monitor-tally-mesa``
    catalog case with the automata disabled vs enabled.  Report
    signatures are asserted byte-identical and the speedup must clear
    :data:`DFA_NOEAGER_GATE_MIN`.
    """
    from .core.automata import AutomatonMonitor, automata_plan_for
    from .core.checker import check_computation
    from .problems.ring import RingProgram, ring_spec
    from .sim.scheduler import explore

    results: Dict[str, dict] = {}
    spec = ring_spec()
    program = RingProgram(workers=2, rounds=4)

    def census(with_monitor: bool):
        monitor = (AutomatonMonitor(automata_plan_for(spec), spec)
                   if with_monitor else None)
        t0 = time.perf_counter()
        verdicts = {}
        for run in explore(program, dfa=monitor):
            fp = run.computation.stable_fingerprint()
            if fp in verdicts:
                continue
            verdicts[fp] = check_computation(
                run.computation, spec, use_slice=True,
                use_dfa=with_monitor,
                decided=dict(run.decided) if with_monitor else None).ok
        return time.perf_counter() - t0, verdicts, monitor

    plain_s, plain, _ = census(False)
    dfa_s, decided, monitor = census(True)
    assert set(plain) == set(decided), (
        "dfa:early-violation: monitored fingerprint set differs from "
        "unmonitored")
    assert plain == decided, (
        "dfa:early-violation: monitored verdicts differ from unmonitored")
    assert monitor.cuts > 0, (
        "dfa:early-violation: the monitor cut no branches")
    ratio = plain_s / dfa_s
    assert ratio >= DFA_GATE_MIN, (
        f"dfa:early-violation: {ratio:.1f}x is below the "
        f"{DFA_GATE_MIN:.0f}x floor")
    results["dfa:early-violation"] = {
        "gate": True,
        "distinct": len(plain),
        "cuts": monitor.cuts,
        "nodfa_s": round(plain_s, 6),
        "dfa_s": round(dfa_s, 6),
        "speedup": round(ratio, 2),
    }
    if quick:
        return results

    from .langs.monitor import MonitorProgram, tally_system
    from .problems.ring import mark_correspondence, tally_spec
    from .verify import verify_program

    def end_to_end(dfa: bool):
        return verify_program(
            MonitorProgram(tally_system(2, 3, mutant=True),
                           eager_reductions=False, semantics="mesa"),
            tally_spec(2), mark_correspondence(), dfa=dfa)

    t0 = time.perf_counter()
    off = end_to_end(False)
    nodfa_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = end_to_end(True)
    with_s = time.perf_counter() - t0
    assert off.signature() == on.signature(), (
        "dfa:noeager: report signature differs with the monitor on")
    assert not on.ok, "dfa:noeager: the mutant must be caught"
    assert on.engine_stats.dfa_cuts > 0, (
        "dfa:noeager: the monitor cut no branches")
    e2e_ratio = nodfa_s / with_s
    assert e2e_ratio >= DFA_NOEAGER_GATE_MIN, (
        f"dfa:noeager: {e2e_ratio:.2f}x end-to-end is below the "
        f"{DFA_NOEAGER_GATE_MIN:.1f}x floor")
    results["dfa:noeager"] = {
        "gate": True,
        "cuts": on.engine_stats.dfa_cuts,
        "nodfa_s": round(nodfa_s, 6),
        "dfa_s": round(with_s, 6),
        "speedup": round(e2e_ratio, 2),
    }
    return results


#: Minimum memoised-search-vs-brute-force *work* ratio (permutations
#: examined by the oracle / states expanded by the search) for the
#: gated ``objects:witness-*`` rows -- an absolute floor asserted on
#: every run.  The memoised witness search is exponential in
#: operations where the permutation oracle is factorial, so on the
#: 8-operation bench histories the gap is two to three orders of
#: magnitude; the floor only guards against the search degenerating
#: into the oracle it is supposed to dominate.  Like the POR rows'
#: run-count ratios, the work ratio is deterministic on any machine,
#: which is what makes the baseline gate meaningful; wall times ride
#: along as context.
OBJECTS_GATE_MIN = 25.0

#: (row name, object type, history seed).  The seeds are pinned to
#: corrupted histories that are neither linearizable nor sequentially
#: consistent, so both searches must exhaust -- the brute-force side
#: cannot exit early on a lucky witness.
OBJECTS_WORKLOADS: Tuple[Tuple[str, str, int], ...] = (
    ("objects:witness-register", "register", 0),
    ("objects:witness-queue", "queue", 1),
)
QUICK_OBJECTS_WORKLOADS = OBJECTS_WORKLOADS[:1]


def run_objects_bench(quick: bool = False,
                      repeats: int = 3) -> Dict[str, dict]:
    """Consistency-checking benchmarks (S12, ``docs/OBJECTS.md``).

    ``objects:witness-*`` (gated): the production memoised witness
    search (:func:`repro.verify.consistency.linearizable`) against the
    brute-force permutation oracle on a pinned seeded 8-operation
    history.  Verdict equality is asserted before any measurement, and
    the gated ``speedup`` is the *work* ratio -- permutations examined
    by the oracle over states expanded by the search -- which is
    deterministic for the pinned history, so the baseline comparison
    cannot flake on timer noise.  It must clear
    :data:`OBJECTS_GATE_MIN` on every run.  Wall times for both sides
    are reported as context (the search is timed over a batch; single
    calls are microseconds).

    ``objects:verify-catalog`` (informational): end-to-end
    ``verify_program`` wall time over the four correct object workloads
    -- the cost of a full consistency verdict per distinct computation
    through the standard engine pipeline.
    """
    import random as _random

    from .verify.consistency import (
        brute_force_linearizable,
        decider_work,
        linearizable,
        random_object_history,
    )

    results: Dict[str, dict] = {}
    workloads = QUICK_OBJECTS_WORKLOADS if quick else OBJECTS_WORKLOADS
    for name, object_type, seed in workloads:
        history = random_object_history(
            _random.Random(seed), object_type, n_procs=2, ops_per_proc=4,
            corrupt=True)
        fast, slow = linearizable(history), brute_force_linearizable(history)
        assert fast == slow, (
            f"{name}: witness search says {fast}, brute force says {slow}")
        assert not slow, (
            f"{name}: pinned history became linearizable; the brute-force "
            f"side would exit early and the ratio would be meaningless")
        mark = decider_work()
        linearizable(history)
        brute_force_linearizable(history)
        work = decider_work()
        search_nodes = work["search_nodes"] - mark["search_nodes"]
        brute_perms = work["brute_perms"] - mark["brute_perms"]
        ratio = brute_perms / search_nodes
        assert ratio >= OBJECTS_GATE_MIN, (
            f"{name}: {ratio:.1f}x over the permutation oracle is below "
            f"the {OBJECTS_GATE_MIN:.0f}x floor")
        batch = 200
        search_s, _ = _best_of(repeats, lambda: [
            linearizable(history) for _ in range(batch)])
        search_s /= batch
        brute_s, _ = _best_of(repeats,
                              lambda: brute_force_linearizable(history))
        results[name] = {
            "gate": True,
            "ops": len(history.ops),
            "search_nodes": search_nodes,
            "brute_perms": brute_perms,
            "brute_s": round(brute_s, 6),
            "search_s": round(search_s, 6),
            "speedup": round(ratio, 2),
        }

    if not quick:
        from .problems.objects import object_case
        from .verify import verify_program

        def verify_all():
            for object_type in ("register", "queue", "lock", "counter"):
                program, spec, corr, _pspec = object_case(object_type)
                report = verify_program(program, spec, corr)
                assert report.ok, (
                    f"objects:verify-catalog: correct {object_type} "
                    f"workload failed verification")

        verify_s, _ = _best_of(1, verify_all)
        results["objects:verify-catalog"] = {
            "gate": False,
            "cases": 4,
            "verify_s": round(verify_s, 6),
        }
    return results


def compare_to_baseline(results: Dict[str, dict], baseline: dict,
                        tolerance: float = GATE_TOLERANCE) -> List[str]:
    """Regression messages for gated workloads present in both runs."""
    regressions: List[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, row in results.items():
        if not row.get("gate"):
            continue
        base = base_workloads.get(name)
        if base is None or "speedup" not in base:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if row["speedup"] < floor:
            regressions.append(
                f"{name}: speedup {row['speedup']}x is more than "
                f"{tolerance:.0%} below the baseline {base['speedup']}x "
                f"(floor {floor:.2f}x)")
    return regressions


def _suite_selected(only: Optional[str], prefix: str) -> bool:
    """Whether a row-name filter can match rows from this suite."""
    return only is None or prefix.startswith(only) or only.startswith(prefix)


def run_bench(quick: bool = False, json_path: Optional[str] = None,
              baseline_path: Optional[str] = None, repeats: int = 3,
              only: Optional[str] = None, out=sys.stdout) -> int:
    """The ``repro bench`` entry point (also used by CI bench-smoke).

    ``only`` restricts the run to rows whose name starts with that
    prefix (``--only por``, ``--only dfa:noeager``); suites that cannot
    produce a matching row are skipped entirely, and the gated/info
    summary counts the subset actually run.
    """
    results: Dict[str, dict] = {}
    if _suite_selected(only, "checker:"):
        results.update(run_checker_bench(quick=quick, repeats=repeats))
    if _suite_selected(only, "slice:"):
        results.update(run_slice_bench(quick=quick, repeats=repeats))
    if not quick:
        if _suite_selected(only, "engine:"):
            results.update(run_engine_bench())
        if _suite_selected(only, "serve:"):
            results.update(run_serve_bench(repeats=repeats))
    if _suite_selected(only, "por:"):
        results.update(run_por_bench(quick=quick))
    if _suite_selected(only, "dfa:"):
        results.update(run_dfa_bench(quick=quick))
    if _suite_selected(only, "objects:"):
        results.update(run_objects_bench(quick=quick, repeats=repeats))
    if only is not None:
        results = {name: row for name, row in results.items()
                   if name.startswith(only)}
        if not results:
            print(f"no bench rows match --only {only!r}", file=out)
            return 2
    for name, row in results.items():
        # every row says whether its ratio participates in the baseline
        # gate -- an [info] row that regresses is reported, never fatal
        gated = "   [gated]" if row.get("gate") else "   [info]"
        if "full_runs" in row:
            print(f"{name:18s} full {row['full_runs']} runs "
                  f"({row['full_s']:.4f}s)   por {row['por_runs']} runs "
                  f"({row['por_s']:.4f}s)   reduction {row['speedup']}x"
                  f"{gated}", file=out)
        elif "sliced_s" in row:
            print(f"{name:18s} walked {row['lattice_s']:.4f}s   "
                  f"sliced {row['sliced_s']:.4f}s   "
                  f"speedup {row['speedup']}x{gated}", file=out)
        elif "serve_s" in row:
            print(f"{name:18s} one-shot {row['oneshot_s']:.4f}s   "
                  f"daemon {row['serve_s']:.4f}s   "
                  f"speedup {row['speedup']}x{gated}", file=out)
        elif "nodfa_s" in row:
            print(f"{name:18s} no-dfa {row['nodfa_s']:.4f}s   "
                  f"dfa {row['dfa_s']:.4f}s ({row['cuts']} cut(s))   "
                  f"speedup {row['speedup']}x{gated}", file=out)
        elif "brute_s" in row:
            print(f"{name:18s} brute-force {row['brute_perms']} perms "
                  f"({row['brute_s']:.4f}s)   "
                  f"search {row['search_nodes']} nodes "
                  f"({row['search_s']:.6f}s, {row['ops']} op(s))   "
                  f"work ratio {row['speedup']}x{gated}", file=out)
        elif "verify_s" in row:
            print(f"{name:18s} verified {row['cases']} case(s) in "
                  f"{row['verify_s']:.4f}s{gated}", file=out)
        else:
            print(f"{name:18s} interpreted {row['lattice_s']:.4f}s   "
                  f"compiled {row['compiled_s']:.4f}s   "
                  f"speedup {row['speedup']}x{gated}", file=out)
    n_gated = sum(1 for row in results.values() if row.get("gate"))
    print(f"{n_gated} gated workload(s), "
          f"{len(results) - n_gated} informational", file=out)

    # gate before (over)writing, so a regressing run never replaces the
    # baseline it failed against
    baseline_file = baseline_path or json_path
    baseline = None
    if baseline_file is not None:
        try:
            with open(baseline_file) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            baseline = None
    if baseline is not None:
        regressions = compare_to_baseline(results, baseline)
        for message in regressions:
            print(f"REGRESSION: {message}", file=out)
        if regressions:
            return 1
        print(f"gate: no regression vs {baseline_file} "
              f"(tolerance {GATE_TOLERANCE:.0%})", file=out)

    if json_path is not None:
        payload = {
            "schema": 1,
            "bench": "repro bench",
            "quick": quick,
            "gate_tolerance": GATE_TOLERANCE,
            "workloads": results,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {json_path}", file=out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="compiled-checker benchmarks with a regression gate")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads only, skip the engine bench "
                             "(CI bench-smoke)")
    parser.add_argument("--json", nargs="?", const="BENCH_checker.json",
                        default=None, metavar="FILE",
                        help="write results as JSON (default file: "
                             "BENCH_checker.json); if the file exists it "
                             "is used as the regression baseline first")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="gate against this baseline instead of the "
                             "--json target")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats per measurement, best-of "
                             "(default 3)")
    parser.add_argument("--only", default=None, metavar="PREFIX",
                        help="run only rows whose name starts with this "
                             "prefix (e.g. 'por', 'dfa:noeager')")
    args = parser.parse_args(argv)
    return run_bench(quick=args.quick, json_path=args.json,
                     baseline_path=args.baseline, repeats=args.repeats,
                     only=args.only)


if __name__ == "__main__":
    sys.exit(main())
