"""Shim so that ``pip install -e .`` works on environments without the
``wheel`` package (PEP 660 editable installs need it; the legacy
``setup.py develop`` path does not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
