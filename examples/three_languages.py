#!/usr/bin/env python3
"""One problem, three language primitives (Section 11).

The bounded buffer, solved with a Monitor, with CSP processes, and with
ADA tasks -- each solution verified against the same GEM problem
specification through its own significant-object correspondence.

Run:  python examples/three_languages.py
"""

from repro.langs.ada import (
    AdaProgram,
    ada_program_spec,
    bounded_buffer_ada_system,
)
from repro.langs.csp import (
    CspProgram,
    bounded_buffer_csp_system,
    csp_program_spec,
)
from repro.langs.monitor import (
    MonitorProgram,
    bounded_buffer_system,
    monitor_program_spec,
)
from repro.problems.bounded_buffer import (
    ada_correspondence,
    bounded_buffer_spec,
    csp_correspondence,
    monitor_correspondence,
)
from repro.verify import verify_program

CAPACITY = 2
ITEMS = (10, 20, 30)


def verify_monitor() -> None:
    system = bounded_buffer_system(capacity=CAPACITY, items=ITEMS)
    report = verify_program(
        MonitorProgram(system),
        bounded_buffer_spec(CAPACITY, with_exclusion=True),
        monitor_correspondence("bb"),
        program_spec=monitor_program_spec(system),
    )
    print("Monitor solution:")
    print(report.summary())
    print()


def verify_csp() -> None:
    system = bounded_buffer_csp_system(capacity=CAPACITY, items=ITEMS)
    report = verify_program(
        CspProgram(system),
        # rendezvous End events are pairwise concurrent, so the safety
        # walks check the complete linearisation (see DESIGN.md)
        bounded_buffer_spec(CAPACITY, temporal_safety=False),
        csp_correspondence(),
        program_spec=csp_program_spec(system),
    )
    print("CSP solution:")
    print(report.summary())
    print()


def verify_ada() -> None:
    system = bounded_buffer_ada_system(capacity=CAPACITY, items=ITEMS)
    report = verify_program(
        AdaProgram(system),
        bounded_buffer_spec(CAPACITY),
        ada_correspondence(),
        program_spec=ada_program_spec(system),
    )
    print("ADA solution:")
    print(report.summary())
    print()


if __name__ == "__main__":
    verify_monitor()
    verify_csp()
    verify_ada()
