#!/usr/bin/env python3
"""The paper's two distributed applications (Sections 1, 11).

* The distributed database update: timestamped replicated updates with
  arbitrary message delivery order -- verified for convergence
  (functional correctness), causality, and full propagation over every
  bounded execution, and shown diverging once timestamps are ignored.
* The asynchronous Game of Life: a glider on a toroidal grid, each cell
  advancing on its own clock -- verified equal to the synchronous
  reference on sampled schedules, with distant cells genuinely
  concurrent in the GEM computation.

Run:  python examples/distributed_applications.py
"""

from repro.core import check_computation
from repro.problems.db_update import (
    DbUpdateProgram,
    db_update_spec,
    standard_requests,
    winning_value,
)
from repro.problems.game_of_life import (
    GLIDER_5X5,
    AsyncLifeProgram,
    cell_element,
    life_spec,
    synchronous_reference,
)
from repro.sim import explore, run_random, sample_runs


def database_update() -> None:
    print("== distributed database update (3 sites, 2 clients) ==")
    requests = standard_requests(n_clients=2, n_sites=3)
    spec = db_update_spec(3, requests)
    print(f"expected winning value: {winning_value(requests, 3)}")

    runs = list(explore(DbUpdateProgram(3, requests)))
    ok = sum(1 for r in runs if check_computation(r.computation, spec).ok)
    print(f"correct algorithm: {ok}/{len(runs)} executions verified")

    mutant_runs = list(explore(DbUpdateProgram(3, requests,
                                               broken_timestamps=True)))
    bad = sum(1 for r in mutant_runs
              if not check_computation(r.computation, spec).ok)
    print(f"no-timestamps mutant: {bad}/{len(mutant_runs)} executions "
          "rejected (replicas diverge under message races)")
    print()


def async_life() -> None:
    print("== asynchronous Game of Life (glider, 5x5 torus, 3 generations) ==")
    generations = 3
    spec = life_spec(GLIDER_5X5, 5, 5, generations)
    program = AsyncLifeProgram.make(GLIDER_5X5, 5, 5, generations)

    runs = sample_runs(program, 10, seed=0)
    ok = sum(1 for r in runs if check_computation(r.computation, spec).ok)
    print(f"{ok}/{len(runs)} sampled schedules match the synchronous "
          "reference")

    run = run_random(program, seed=1)
    comp = run.computation
    a = [e for e in comp.events_at(cell_element(0, 0))
         if e.event_class == "Compute"][0]
    b = [e for e in comp.events_at(cell_element(2, 3))
         if e.event_class == "Compute"][0]
    print(f"cell(0,0) gen-1 and cell(2,3) gen-1 potentially concurrent: "
          f"{comp.concurrent(a.eid, b.eid)}")

    reference = synchronous_reference(GLIDER_5X5, 5, 5, generations)
    live = sorted(c for c, v in reference[generations].items() if v)
    print(f"live cells after {generations} generations: {live}")
    print()


if __name__ == "__main__":
    database_update()
    async_life()
