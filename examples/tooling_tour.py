#!/usr/bin/env python3
"""A tour of the surrounding tooling: counterexample witnesses, DOT
rendering, JSON round-trips, and dynamic group structures.

Run:  python examples/tooling_tour.py
"""

from repro.core import (
    ADD_GROUP_MEMBER,
    ComputationBuilder,
    DynamicGroupStructure,
    ForAll,
    GroupDecl,
    Henceforth,
    Not,
    Occurred,
    Restriction,
    check_dynamic_scope,
    computation_from_json_str,
    computation_to_dot,
    computation_to_json_str,
    find_witness,
    history_lattice_to_dot,
)


def diamond():
    b = ComputationBuilder()
    e1 = b.add_event("E1", "Fork")
    e2 = b.add_event("E2", "Work")
    e3 = b.add_event("E3", "Work")
    e4 = b.add_event("E4", "Join")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    return b.freeze()


def witnesses() -> None:
    print("== counterexample witnesses ==")
    comp = diamond()
    bogus = Restriction(
        "never-any-work",
        Henceforth(ForAll("w", "Work", Not(Occurred("w")))),
        comment="deliberately false",
    )
    witness = find_witness(comp, bogus)
    print(f"restriction {bogus.name!r} fails; witness:")
    for line in witness.describe().splitlines():
        print("   " + line)
    print()


def rendering() -> None:
    print("== DOT rendering (pipe to `dot -Tsvg`) ==")
    comp = diamond()
    dot = computation_to_dot(comp, title="diamond")
    print("\n".join(dot.splitlines()[:8]) + "\n  ...")
    lattice = history_lattice_to_dot(comp)
    print(f"history lattice: {lattice.count('->')} lattice edges")
    print()


def serialisation() -> None:
    print("== JSON round-trip ==")
    comp = diamond()
    text = computation_to_json_str(comp)
    back = computation_from_json_str(text)
    print(f"serialised {len(comp)} events to {len(text)} bytes; "
          f"fingerprints equal: {back.fingerprint() == comp.fingerprint()}")
    print()


def dynamic_groups() -> None:
    print("== dynamic group structures (paper footnote 5) ==")
    dynamic = DynamicGroupStructure(
        ["In", "Out", "structure"],
        [GroupDecl.make("G", ["In", "structure"])],
    )

    def build(grant_observed: bool):
        b = ComputationBuilder()
        grant = b.add_event("structure", ADD_GROUP_MEMBER,
                            {"group": "G", "member": "Out"})
        src = b.add_event("Out", "Go")
        dst = b.add_event("In", "Hit")
        if grant_observed:
            b.add_enable(grant, src)
        b.add_enable(src, dst)
        return b.freeze()

    ok = check_dynamic_scope(build(grant_observed=True), dynamic)
    bad = check_dynamic_scope(build(grant_observed=False), dynamic)
    print(f"access after observing the membership grant: "
          f"{len(ok)} violations")
    print(f"access without having observed it:           "
          f"{len(bad)} violation(s): {bad[0] if bad else ''}")
    print()


if __name__ == "__main__":
    witnesses()
    rendering()
    serialisation()
    dynamic_groups()
