#!/usr/bin/env python3
"""The Section 9 worked example, end to end.

Verifies the paper's ReadersWriters monitor against the Readers/Writers
problem specification with readers' priority -- and shows the checker
rejecting a mutant monitor whose EndWrite prefers the write queue.

Run:  python examples/readers_writers_verification.py
"""

from repro.langs.monitor import (
    MonitorProgram,
    monitor_program_spec,
    readers_writers_monitor_writers_first,
    readers_writers_system,
)
from repro.problems.readers_writers import (
    monitor_correspondence,
    rw_problem_spec,
)
from repro.verify import project, verify_program
from repro.sim import run_random


def show_projection() -> None:
    """One execution, projected onto the problem's significant objects."""
    print("== one execution, projected (Section 9's correspondence) ==")
    system = readers_writers_system(n_readers=1, n_writers=1)
    run = run_random(MonitorProgram(system), seed=5)
    print(f"program computation: {len(run.computation)} events")
    projected = project(run.computation, monitor_correspondence("rw"))
    print(f"projected onto significant objects: {len(projected)} events")
    for event in projected.events:
        print("   " + event.describe())
    print()


def verify(mutant: bool) -> None:
    label = "writers-first MUTANT" if mutant else "paper's monitor"
    print(f"== verifying the {label} (1 reader, 2 writers) ==")
    monitor = readers_writers_monitor_writers_first() if mutant else None
    system = readers_writers_system(n_readers=1, n_writers=2,
                                    monitor=monitor)
    users = [c.name for c in system.callers]
    report = verify_program(
        MonitorProgram(system),
        rw_problem_spec(users, variant="readers-priority"),
        monitor_correspondence("rw"),
        program_spec=None if mutant else monitor_program_spec(system),
    )
    print(report.summary())
    print()


if __name__ == "__main__":
    show_projection()
    verify(mutant=False)
    verify(mutant=True)
