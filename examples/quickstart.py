#!/usr/bin/env python3
"""Quickstart: build a GEM computation by hand and explore it.

Reproduces the paper's two inline worked examples:

* Section 4's group-access table (which elements may enable which);
* Section 7's history lattice -- the diamond computation with five
  non-empty histories and three valid history sequences.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ComputationBuilder,
    Exists,
    ForAll,
    GroupDecl,
    GroupStructure,
    Henceforth,
    Implies,
    LatticeChecker,
    Occurred,
    all_histories,
    count_maximal_history_sequences,
    maximal_history_sequences,
    prerequisite,
    full_history,
)


def section7_history_lattice() -> None:
    print("== Section 7: the history lattice of a diamond computation ==")
    b = ComputationBuilder()
    e1 = b.add_event("E1", "A")
    e2 = b.add_event("E2", "A")
    e3 = b.add_event("E3", "A")
    e4 = b.add_event("E4", "A")
    b.add_enable(e1, e2)
    b.add_enable(e1, e3)
    b.add_enable(e2, e4)
    b.add_enable(e3, e4)
    comp = b.freeze()

    print(f"events: {[str(e) for e in comp.events]}")
    print(f"e2 and e3 potentially concurrent: "
          f"{comp.concurrent(e2.eid, e3.eid)}")

    histories = all_histories(comp, include_empty=False)
    print(f"non-empty histories ({len(histories)}, paper lists 5):")
    for h in histories:
        print("   {" + ", ".join(sorted(str(e) for e in h.events)) + "}")

    n = count_maximal_history_sequences(comp, max_step=None)
    print(f"valid history sequences from α₀ ({n}, paper lists 3):")
    for seq in maximal_history_sequences(comp, max_step=None):
        steps = [
            "{" + ", ".join(sorted(str(e) for e in h.events)) + "}"
            for h in seq.histories
        ]
        print("   " + " ⊆ ".join(steps))

    # a restriction with the prerequisite abbreviation, and a temporal one
    pre = prerequisite("A", "A")  # trivially false here: A enables A twice
    print(f"prerequisite(A, A) at the complete computation: "
          f"{pre.holds_at(full_history(comp))}")
    checker = LatticeChecker(comp)
    safety = Henceforth(ForAll(
        "x", "E4.A",
        Implies(Occurred("x"), Exists("y", "E1.A", Occurred("y")))))
    print(f"□(E4 occurred ⊃ E1 occurred) over every vhs: "
          f"{checker.holds(safety)}")
    print()


def section4_access_table() -> None:
    print("== Section 4: group scope and the allowed-communications table ==")
    structure = GroupStructure(
        [f"EL{i}" for i in range(1, 7)],
        [
            GroupDecl.make("G1", ["EL2", "EL3"]),
            GroupDecl.make("G2", ["EL4", "EL5"]),
            GroupDecl.make("G3", ["EL3", "EL4"]),
            GroupDecl.make("G4", ["EL1"]),
        ],
    )
    print("an event in:   may enable any event in:")
    for src, dsts in structure.access_table().items():
        print(f"   {src:6s}      {', '.join(sorted(dsts))}")
    print()


if __name__ == "__main__":
    section7_history_lattice()
    section4_access_table()
